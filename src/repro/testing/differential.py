"""The differential driver: symbolic pipeline vs. concrete oracle.

``run_source`` pushes one manifest through the *real* production
pipeline (:class:`repro.core.pipeline.Rehearsal` — memoized DAG
exploration, preprocessed incremental SAT, unsat-core race
localization) and through the concrete interleaving oracle
(:mod:`repro.testing.oracle`), then classifies every observable
disagreement:

``missed_nondet``
    the pipeline said deterministic but the oracle exhibits two
    concrete orders diverging from a concrete initial state — a
    soundness bug in the symbolic stack (the class a sabotaged
    exploration memo produces);
``false_nondet``
    the pipeline said non-deterministic but its own witness replays
    identically under both witness orders *and* the oracle finds no
    divergence even starting from the witness state;
``witness_invalid``
    the verdict agrees but the claimed witness does not concretely
    reproduce the divergence;
``missed_nonidempotence`` / ``idempotence_witness_invalid``
    the same two classes for the idempotence check;
``race_pair_mismatch`` / ``race_path_mismatch``
    localization named a resource pair (or contended path) that does
    not concretely race on the witness while truly racing pairs exist;
``pipeline_error``
    the pipeline failed outright on a generated (well-formed) case.

With ``lint=True`` the same case also runs through the static
analyzer's graph-stage rules (:func:`repro.analysis.lint.lint_graph`)
and its verdict is cross-examined against the oracle:

``lint_false_race``
    lint reported a *definite* race (REH005 — which by construction
    carries a concrete two-order divergence witness) but the oracle,
    fed that very witness state, finds the case deterministic — a
    lint soundness bug, failing;
``lint missed definite races``
    the oracle exhibits a divergence lint did not flag as REH005 —
    expected (lint's confirmation budget is bounded), *counted* in the
    summary but never a failure.

Budget blow-ups and oracle abstentions are *skips*, never
disagreements.  ``FuzzSession`` drives a whole seeded run: a
deterministic case quota derived from the time budget, differential
checks, optional shrinking, and a byte-reproducible JSON summary.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import __version__
from repro.analysis.determinism import DeterminismOptions
from repro.core.pipeline import Rehearsal
from repro.fs.semantics import ERROR, eval_expr
from repro.resources.compiler import ModelContext
from repro.testing.generate import (
    GENERATOR_VERSION,
    CaseGenerator,
    GeneratedCase,
    GeneratorConfig,
)
from repro.testing.oracle import run_oracle

#: A time budget buys a *deterministic* case quota at this rate; the
#: wall clock is only a safety stop (summaries are marked
#: ``truncated`` if it ever fires), so equal seeds and budgets yield
#: byte-identical summaries on any machine fast enough to finish.
CASES_PER_SECOND = 5


@dataclass
class Disagreement:
    kind: str
    detail: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail}


@dataclass
class CaseOutcome:
    """Both verdicts for one case plus the classified disagreements."""

    name: str
    pipeline_deterministic: Optional[bool] = None
    pipeline_idempotent: Optional[bool] = None
    pipeline_error: Optional[str] = None
    race_pair: Optional[Tuple[str, str]] = None
    race_path: Optional[str] = None
    oracle_deterministic: Optional[bool] = None
    oracle_idempotent: Optional[bool] = None
    oracle_skipped: bool = False
    oracle_skip_reason: Optional[str] = None
    oracle_racing: List[Tuple[str, str]] = field(default_factory=list)
    disagreements: List[Disagreement] = field(default_factory=list)
    #: Set when the case also ran through the static analyzer
    #: (``run_source(..., lint=True)``).
    lint_ran: bool = False
    #: Pairs lint confirmed as definite races (REH005).
    lint_definite_pairs: List[Tuple[str, str]] = field(
        default_factory=list
    )
    #: Race candidates lint saw (footprint conflicts, REH005+REH006).
    lint_candidates: int = 0
    #: Oracle found a divergence lint did not flag REH005 — counted,
    #: never failing (lint's confirmation budget is bounded).
    lint_missed_definite_race: bool = False

    @property
    def agreed(self) -> bool:
        return not self.disagreements

    def kinds(self) -> List[str]:
        return [d.kind for d in self.disagreements]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "pipeline": {
                "deterministic": self.pipeline_deterministic,
                "idempotent": self.pipeline_idempotent,
                "error": self.pipeline_error,
                "race_pair": (
                    list(self.race_pair) if self.race_pair else None
                ),
                "race_path": self.race_path,
            },
            "oracle": {
                "deterministic": self.oracle_deterministic,
                "idempotent": self.oracle_idempotent,
                "skipped": self.oracle_skipped,
                "skip_reason": self.oracle_skip_reason,
                "racing": [list(pair) for pair in self.oracle_racing],
            },
            "disagreements": [
                d.to_dict() for d in self.disagreements
            ],
            "lint": (
                {
                    "definite_pairs": [
                        list(pair) for pair in self.lint_definite_pairs
                    ],
                    "candidates": self.lint_candidates,
                    "missed_definite_race": (
                        self.lint_missed_definite_race
                    ),
                }
                if self.lint_ran
                else None
            ),
        }


def run_source(
    source: str,
    name: str = "<fuzz>",
    options: Optional[DeterminismOptions] = None,
    context: Optional[ModelContext] = None,
    oracle_seed: int = 0,
    oracle_max_states: int = 24,
    oracle_max_evaluations: int = 50_000,
    lint: bool = False,
) -> CaseOutcome:
    """Differential-check one manifest source; see module docstring."""
    outcome = CaseOutcome(name=name)
    tool = Rehearsal(context=context, options=options)
    # Compile once; the pipeline verifies on the compiled pair and the
    # oracle explores the same graph/programs.
    from repro.errors import ReproError

    try:
        compiled = tool.compile(source)
    except ReproError:
        compiled = None  # verify() reports the compile error itself
    report = tool.verify(source, name=name, compiled=compiled)
    outcome.pipeline_deterministic = report.deterministic
    outcome.pipeline_idempotent = report.idempotent
    outcome.pipeline_error = report.error
    det = report.determinism

    if report.error is not None or compiled is None:
        if report.error is not None and not report.error_transient:
            outcome.disagreements.append(
                Disagreement(
                    kind="pipeline_error",
                    detail=f"pipeline failed on a generated case: "
                    f"{report.error}",
                )
            )
        return outcome

    graph, programs = compiled

    witness_states = []
    if det is not None and det.witness_fs is not None:
        witness_states.append(det.witness_fs)
        if det.witness_orders is not None:
            order_a, order_b = det.witness_orders
            out_a = _replay(programs, order_a, det.witness_fs)
            out_b = _replay(programs, order_b, det.witness_fs)
            if out_a == out_b:
                outcome.disagreements.append(
                    Disagreement(
                        kind="witness_invalid",
                        detail=(
                            "witness orders produce identical concrete "
                            f"outcomes on the witness state "
                            f"{det.witness_fs!r}"
                        ),
                    )
                )

    lint_report = None
    if lint:
        from repro.analysis.lint import lint_graph

        lint_report = lint_graph(graph, programs, name=name)
        outcome.lint_ran = True
        outcome.lint_definite_pairs = [
            tuple(pair) for pair in lint_report.definite_race_pairs()
        ]
        outcome.lint_candidates = lint_report.stats.race_candidates
        # Feed every lint divergence witness to the oracle: if lint's
        # "definite" race is bogus, the oracle must still come back
        # deterministic even when handed lint's own initial state.
        witness_states.extend(
            w.initial for w in lint_report.race_witnesses
        )

    oracle = run_oracle(
        graph,
        programs,
        extra_states=witness_states,
        max_states=oracle_max_states,
        max_evaluations=oracle_max_evaluations,
        seed=oracle_seed,
    )
    outcome.oracle_deterministic = oracle.deterministic
    outcome.oracle_idempotent = oracle.idempotent
    outcome.oracle_skipped = oracle.skipped
    outcome.oracle_skip_reason = oracle.skip_reason
    outcome.oracle_racing = [r.key for r in oracle.racing]

    if oracle.skipped:
        return outcome

    if lint_report is not None:
        if outcome.lint_definite_pairs and oracle.deterministic is True:
            outcome.disagreements.append(
                Disagreement(
                    kind="lint_false_race",
                    detail=(
                        "lint flagged definite races "
                        f"{outcome.lint_definite_pairs} but the oracle "
                        "(fed lint's own divergence witnesses) finds "
                        "the case deterministic"
                    ),
                )
            )
        if oracle.deterministic is False and not outcome.lint_definite_pairs:
            outcome.lint_missed_definite_race = True

    if report.deterministic is True and oracle.deterministic is False:
        div = oracle.divergence
        outcome.disagreements.append(
            Disagreement(
                kind="missed_nondet",
                detail=(
                    "pipeline: deterministic; oracle: orders "
                    f"{div.order_a} and {div.order_b} diverge from "
                    f"{div.initial!r}"
                ),
            )
        )
    elif report.deterministic is False and oracle.deterministic is True:
        outcome.disagreements.append(
            Disagreement(
                kind="false_nondet",
                detail=(
                    "pipeline: non-deterministic; oracle found no "
                    "concrete divergence, even from the pipeline's own "
                    "witness state"
                ),
            )
        )

    if (
        report.deterministic is True
        and oracle.deterministic is True
    ):
        _check_idempotence(outcome, report, graph, programs, oracle)

    if (
        det is not None
        and det.race is not None
        and oracle.deterministic is False
        and oracle.racing
    ):
        _check_race(outcome, det, oracle)
    return outcome


def _check_idempotence(outcome, report, graph, programs, oracle) -> None:
    if report.idempotent is True and oracle.idempotent is False:
        initial, once, twice = oracle.idempotence_witness
        outcome.disagreements.append(
            Disagreement(
                kind="missed_nonidempotence",
                detail=(
                    f"pipeline: idempotent; oracle: from {initial!r} "
                    f"one run gives {once!r} but a second gives "
                    f"{twice!r}"
                ),
            )
        )
    elif report.idempotent is False:
        idem = report.idempotence
        witness = idem.witness_fs if idem is not None else None
        if witness is not None:
            import networkx as nx

            order = list(nx.topological_sort(graph))
            once = _replay(programs, order, witness)
            twice = (
                ERROR if once is ERROR else _replay(programs, order, once)
            )
            if once is ERROR or twice == once:
                outcome.disagreements.append(
                    Disagreement(
                        kind="idempotence_witness_invalid",
                        detail=(
                            "pipeline: non-idempotent, but its witness "
                            f"{witness!r} does not concretely exhibit "
                            "a second-run change"
                        ),
                    )
                )


def _check_race(outcome, det, oracle) -> None:
    claimed = tuple(
        sorted((str(det.race.resource_a), str(det.race.resource_b)))
    )
    outcome.race_pair = claimed
    outcome.race_path = (
        str(det.race.path) if det.race.path is not None else None
    )
    truth = {r.key: r for r in oracle.racing}
    if claimed not in truth:
        outcome.disagreements.append(
            Disagreement(
                kind="race_pair_mismatch",
                detail=(
                    f"localization blamed {claimed} but the "
                    "concretely racing pairs are "
                    f"{sorted(truth)}"
                ),
            )
        )
        return
    pair = truth[claimed]
    if (
        outcome.race_path is not None
        and pair.paths
        and not pair.ok_divergence
        and outcome.race_path not in pair.paths
    ):
        outcome.disagreements.append(
            Disagreement(
                kind="race_path_mismatch",
                detail=(
                    f"localization blamed path {outcome.race_path} "
                    f"but {claimed} concretely diverges on "
                    f"{list(pair.paths)}"
                ),
            )
        )


def _replay(programs, order, initial):
    state = initial
    for node in order:
        state = eval_expr(programs[node], state)
        if state is ERROR:
            return ERROR
    return state


# -- the fuzz session ---------------------------------------------------------


@dataclass
class Finding:
    """One disagreeing case, possibly shrunk."""

    case: GeneratedCase
    outcome: CaseOutcome
    shrunk: Optional[GeneratedCase] = None
    shrink_attempts: int = 0
    #: The differential outcome of the final reproducer (captured from
    #: the shrinker's last successful predicate run — no re-check).
    final_outcome: Optional[CaseOutcome] = None

    @property
    def reproducer(self) -> GeneratedCase:
        return self.shrunk if self.shrunk is not None else self.case

    @property
    def reproducer_outcome(self) -> CaseOutcome:
        return (
            self.final_outcome
            if self.final_outcome is not None
            else self.outcome
        )

    def to_dict(self) -> dict:
        return {
            "case_id": self.case.case_id,
            "case_seed": self.case.case_seed,
            "bug_class": self.case.bug,
            "kinds": self.outcome.kinds(),
            "disagreements": [
                d.to_dict() for d in self.outcome.disagreements
            ],
            "resources": len(self.case.resources),
            "shrunk_resources": len(self.reproducer.resources),
            "shrink_attempts": self.shrink_attempts,
        }


@dataclass
class FuzzSummary:
    seed: int
    case_quota: int
    cases_run: int = 0
    truncated: bool = False
    verdict_counts: Dict[str, int] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)
    elapsed_seconds: float = 0.0  # excluded from the JSON summary
    #: Lint cross-examination tallies (``--lint`` runs only).
    lint_enabled: bool = False
    lint_definite_races: int = 0  # cases with ≥1 REH005
    lint_false_races: int = 0  # failing: oracle refuted a REH005
    lint_missed_definite_races: int = 0  # counted, never failing

    @property
    def disagreement_count(self) -> int:
        return len(self.findings)

    def to_json(self) -> str:
        """The byte-reproducible run summary: everything here is a
        pure function of (seed, quota, code version) — no wall-clock
        data except the ``truncated`` safety flag.  Schema 2 added the
        ``lint`` block."""
        payload = {
            "schema": 2,
            "tool_version": __version__,
            "generator_version": GENERATOR_VERSION,
            "seed": self.seed,
            "case_quota": self.case_quota,
            "cases_run": self.cases_run,
            "truncated": self.truncated,
            "verdict_counts": dict(sorted(self.verdict_counts.items())),
            "disagreement_count": self.disagreement_count,
            "findings": [f.to_dict() for f in self.findings],
            "lint": {
                "enabled": self.lint_enabled,
                "definite_races": self.lint_definite_races,
                "false_races": self.lint_false_races,
                "missed_definite_races": self.lint_missed_definite_races,
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class FuzzSession:
    """One seeded differential-fuzzing run."""

    def __init__(
        self,
        seed: int,
        budget_seconds: float = 60.0,
        cases: Optional[int] = None,
        shrink: bool = True,
        generator_config: Optional[GeneratorConfig] = None,
        options: Optional[DeterminismOptions] = None,
        progress=None,
        lint: bool = False,
    ):
        self.seed = seed
        self.budget_seconds = budget_seconds
        self.quota = (
            cases
            if cases is not None
            else max(1, int(budget_seconds * CASES_PER_SECOND))
        )
        self.shrink = shrink
        self.generator = CaseGenerator(seed, generator_config)
        self.options = options
        self.progress = progress or (lambda message: None)
        self.lint = lint

    def run(self) -> FuzzSummary:
        from repro.testing.shrink import shrink_case

        summary = FuzzSummary(
            seed=self.seed,
            case_quota=self.quota,
            lint_enabled=self.lint,
        )
        start = time.monotonic()
        deadline = start + self.budget_seconds
        for case_id in range(self.quota):
            if time.monotonic() > deadline:
                summary.truncated = True
                self.progress(
                    f"wall-clock budget exhausted after "
                    f"{summary.cases_run} cases"
                )
                break
            case = self.generator.generate(case_id)
            outcome = self.check_case(case)
            summary.cases_run += 1
            key = _verdict_key(outcome)
            summary.verdict_counts[key] = (
                summary.verdict_counts.get(key, 0) + 1
            )
            if outcome.lint_ran:
                if outcome.lint_definite_pairs:
                    summary.lint_definite_races += 1
                if outcome.lint_missed_definite_race:
                    summary.lint_missed_definite_races += 1
                if any(
                    d.kind == "lint_false_race"
                    for d in outcome.disagreements
                ):
                    summary.lint_false_races += 1
            if outcome.agreed:
                continue
            self.progress(
                f"case {case_id} ({case.bug}): DISAGREEMENT "
                f"{outcome.kinds()}"
            )
            finding = Finding(case=case, outcome=outcome)
            if self.shrink:
                predicate, last_success = self._same_kinds(outcome)
                finding.shrunk, finding.shrink_attempts = shrink_case(
                    case, predicate
                )
                finding.final_outcome = last_success.get("outcome")
                self.progress(
                    f"case {case_id}: shrunk "
                    f"{len(case.resources)} -> "
                    f"{len(finding.reproducer.resources)} resources"
                )
            summary.findings.append(finding)
        summary.elapsed_seconds = time.monotonic() - start
        return summary

    def check_case(self, case: GeneratedCase) -> CaseOutcome:
        return run_source(
            case.source,
            name=case.name,
            options=self.options,
            oracle_seed=case.case_seed,
            lint=self.lint,
        )

    def _same_kinds(self, original: CaseOutcome):
        """The shrinking predicate (a candidate still reproduces if it
        exhibits every disagreement kind of the original finding) plus
        a mutable cell capturing the outcome of the last *accepted*
        candidate — which is the final reproducer, so its verdicts
        need no re-check."""
        wanted = set(original.kinds())
        last_success: Dict[str, CaseOutcome] = {}

        def predicate(candidate: GeneratedCase) -> bool:
            outcome = self.check_case(candidate)
            if wanted <= set(outcome.kinds()):
                last_success["outcome"] = outcome
                return True
            return False

        return predicate, last_success


def _verdict_key(outcome: CaseOutcome) -> str:
    if outcome.pipeline_error is not None:
        return "error"
    if outcome.oracle_skipped:
        return "oracle_skipped"
    if outcome.pipeline_deterministic is False:
        return "nondeterministic"
    if outcome.pipeline_idempotent is False:
        return "nonidempotent"
    return "verified"
