"""The sequential probability ratio test behind burn-in promotion."""

import math
import random

import pytest

from repro.testing.orchestrate.sprt import (
    Decision,
    SprtConfig,
    SprtTest,
    run_sprt,
)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        SprtConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p_stable": 0.5, "p_flaky": 0.5},
            {"p_stable": 0.2, "p_flaky": 0.7},
            {"p_flaky": 0.0},
            {"p_stable": 1.0},
            {"alpha": 0.0},
            {"alpha": 0.5},
            {"beta": 0.7},
            {"max_trials": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SprtConfig(**kwargs)

    def test_boundaries_bracket_zero(self):
        config = SprtConfig()
        assert config.promote_boundary < 0 < config.demote_boundary
        assert config.pass_increment < 0 < config.fail_increment


class TestDecisions:
    def test_default_promotion_takes_nine_passes(self):
        """With the defaults the llr needs ⌈|promote|/|pass|⌉ = 9
        consecutive passes — the number the committed promotion
        records pin."""
        config = SprtConfig()
        needed = math.ceil(
            config.promote_boundary / config.pass_increment
        )
        assert needed == 9
        test = SprtTest(config=config)
        for _ in range(needed - 1):
            assert test.update(True) is Decision.UNDECIDED
        assert test.update(True) is Decision.PROMOTE
        assert test.trials == 9
        assert test.flake_rate == 0.0

    def test_default_demotes_on_first_failure(self):
        test = SprtTest()
        assert test.update(False) is Decision.DEMOTE
        assert test.failures == 1
        assert test.flake_rate == 1.0

    def test_undecided_when_trial_cap_runs_out(self):
        # Weak hypotheses: single trials barely move the llr.
        config = SprtConfig(
            p_stable=0.6, p_flaky=0.4, max_trials=3
        )
        stream = iter([True, False, True])
        test = run_sprt(lambda i: next(stream), config)
        assert test.decision is Decision.UNDECIDED
        assert test.trials == 3

    def test_update_after_decision_is_an_error(self):
        test = SprtTest()
        test.update(False)
        assert test.done
        with pytest.raises(RuntimeError):
            test.update(True)

    def test_run_sprt_passes_trial_indices(self):
        seen = []

        def trial(index):
            seen.append(index)
            return True

        test = run_sprt(trial, SprtConfig())
        assert test.decision is Decision.PROMOTE
        assert seen == list(range(test.trials))

    def test_history_records_every_trial(self):
        config = SprtConfig(p_stable=0.6, p_flaky=0.4, max_trials=4)
        stream = iter([True, True, False, True])
        test = run_sprt(lambda i: next(stream), config)
        assert test.history == [True, True, False, True]
        assert test.failures == 1
        assert test.flake_rate == pytest.approx(0.25)


class TestErrorBounds:
    """Wald's guarantee, checked empirically on seeded streams."""

    def test_stable_streams_rarely_demote(self):
        rng = random.Random(7)
        config = SprtConfig()
        demoted = sum(
            run_sprt(
                lambda i: rng.random() < 0.995, config
            ).decision
            is Decision.DEMOTE
            for _ in range(200)
        )
        # alpha = 0.05; a perfectly stable-ish stream demoting more
        # than ~10% of the time would mean the math is wrong.
        assert demoted <= 20

    def test_flaky_streams_rarely_promote(self):
        rng = random.Random(11)
        config = SprtConfig()
        promoted = sum(
            run_sprt(
                lambda i: rng.random() < 0.5, config
            ).decision
            is Decision.PROMOTE
            for _ in range(200)
        )
        assert promoted <= 20
