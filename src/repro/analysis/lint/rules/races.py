"""Race rules (REH005 definite-race, REH006 possible-race).

The candidate set is footprint-based (§4.3, Lemma 4): every unordered
pair of resources whose footprints conflict.  That check alone
over-approximates, so each candidate is *self-validated* before being
reported as definite: the checker builds two complete topological
linearizations of the whole graph that differ only in the pair's
order, concretely evaluates both (Fig. 5 reference semantics) from a
family of well-formed initial states, and promotes the candidate to
REH005 only when the **full-run outcomes differ**.  A REH005 therefore
comes with a replayable witness and is a true positive by
construction; candidates the budget cannot confirm stay REH006
warnings.

Both linearizations are valid orders: with ``S`` the non-descendants
of the pair, ``S`` is predecessor-closed, and neither element of an
unordered pair can precede the other, so ``topo(S), a, b,
topo(rest)`` respects every edge (likewise with the pair swapped, and
likewise for the ancestors-first variant used as a second attempt —
placing the pair late keeps later resources from masking the
divergence; placing it early maximizes what the divergence can
poison)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.analysis.commutativity import Footprint, commutativity_matrix
from repro.analysis.lint.diagnostics import (
    Diagnostic,
    RaceWitness,
    Related,
    Severity,
)
from repro.analysis.lint.engine import (
    LintContext,
    Rule,
    graph_checker,
    register_rule,
)
from repro.fs import ERROR, eval_expr, is_error
from repro.testing.oracle import initial_state_family

register_rule(
    Rule(
        id="REH005",
        name="definite-race",
        severity=Severity.ERROR,
        summary="unordered resources provably produce different outcomes",
        description=(
            "Two resources with no ordering constraint between them "
            "have conflicting filesystem footprints, and concretely "
            "evaluating two complete apply orders that differ only in "
            "this pair produces different final filesystems. The "
            "manifest is non-deterministic; the finding carries the "
            "witness initial state and both orders."
        ),
    )
)

register_rule(
    Rule(
        id="REH006",
        name="possible-race",
        severity=Severity.WARNING,
        summary="unordered resources have conflicting footprints",
        description=(
            "Two resources with no ordering constraint have "
            "conflicting footprints (Lemma 4), but no concrete "
            "divergence was found within the confirmation budget. "
            "The conflict may still be benign (both orders can "
            "converge); full SAT-backed verification can decide."
        ),
    )
)


@graph_checker
def races(ctx: LintContext) -> Iterable[Diagnostic]:
    graph = ctx.graph
    if graph is None or graph.number_of_nodes() < 2:
        return
    if ctx.failed:
        # Footprints of unmodeled resources are unknown; candidates
        # would be incomplete and confirmations unreplayable.  The
        # REH003 errors already make the manifest exit 2.
        return

    footprints = ctx.footprints
    matrix = commutativity_matrix(footprints)
    candidates = _candidates(graph, matrix)
    ctx.report.stats.race_candidates = len(candidates)
    if not candidates:
        return

    states: List = []
    if ctx.options.confirm_races:
        states = initial_state_family(
            ctx.programs.values(),
            max_states=ctx.options.max_confirm_states,
            seed=0,
        )

    for a, b in candidates:
        paths = _conflicting_paths(footprints[a], footprints[b])
        witness, swept = _confirm(ctx, graph, a, b, states)
        primary, other = sorted(
            (a, b), key=lambda n: (ctx.span_of(n), str(n))
        )
        line, col = ctx.span_of(primary)
        o_line, o_col = ctx.span_of(other)
        contended = ", ".join(str(p) for p in sorted(paths)) or "error status"
        if witness is not None:
            ctx.report.stats.races_confirmed += 1
            ctx.report.race_witnesses.append(witness)
            yield ctx.diag(
                "REH005",
                f"definite race: {primary} and {other} have no ordering "
                f"constraint and provably diverge (contended: "
                f"{contended})",
                line=line,
                col=col,
                resource=str(primary),
                related=(
                    Related(
                        f"{other} declared here, unordered against "
                        f"{primary}",
                        line=o_line,
                        col=o_col,
                    ),
                ),
                paths=tuple(str(p) for p in sorted(paths)),
            )
        else:
            # A completed sweep is concrete evidence of benignity:
            # both orders agreed on every sampled well-formed state,
            # so demote to an advisory note.  Candidates the budget
            # (or --no-confirm) left unexamined stay warnings.
            demote = swept and states
            suffix = (
                f"; both orders agree on all {len(states)} sampled "
                "initial states"
                if demote
                else "; unconfirmed within the evaluation budget"
                if states
                else "; confirmation disabled"
            )
            yield ctx.diag(
                "REH006",
                f"possible race: {primary} and {other} have no ordering "
                f"constraint and conflicting footprints (contended: "
                f"{contended}{suffix})",
                line=line,
                col=col,
                resource=str(primary),
                related=(
                    Related(
                        f"{other} declared here, unordered against "
                        f"{primary}",
                        line=o_line,
                        col=o_col,
                    ),
                ),
                paths=tuple(str(p) for p in sorted(paths)),
                severity=Severity.NOTE if demote else None,
            )


def _candidates(graph, matrix) -> List[Tuple[object, object]]:
    """Unordered pairs with conflicting footprints, deterministically
    ordered."""
    nodes = sorted(graph.nodes, key=str)
    reach: Dict[object, Set[object]] = {
        n: nx.descendants(graph, n) for n in nodes
    }
    out = []
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            if b in reach[a] or a in reach[b]:
                continue
            if matrix[a][b]:
                continue
            out.append((a, b))
    return out


def _conflicting_paths(fa: Footprint, fb: Footprint) -> Set:
    """The paths on which Lemma 4 fails for this pair (for messages)."""
    paths: Set = set()
    for x, y in ((fa, fb), (fb, fa)):
        touch_rw = y.reads | y.writes
        paths |= x.writes & (touch_rw | y.dir_ensures)
        paths |= x.dir_ensures & touch_rw
        grows = y.writes | y.dir_ensures
        for d in x.children_reads:
            paths.update(p for p in grows if d.is_ancestor_of(p))
    return paths


def _pair_orders(
    graph, a, b, late: bool
) -> Tuple[List[object], List[object]]:
    """Two complete topological orders differing only in the (a, b)
    order.  ``late`` places the pair after every non-descendant;
    otherwise right after the pair's ancestors."""
    if late:
        after = (nx.descendants(graph, a) | nx.descendants(graph, b)) - {
            a,
            b,
        }
        before = set(graph.nodes) - after - {a, b}
    else:
        before = (nx.ancestors(graph, a) | nx.ancestors(graph, b)) - {a, b}
        after = set(graph.nodes) - before - {a, b}
    prefix = list(nx.lexicographical_topological_sort(
        graph.subgraph(before), key=str
    ))
    suffix = list(nx.lexicographical_topological_sort(
        graph.subgraph(after), key=str
    ))
    return prefix + [a, b] + suffix, prefix + [b, a] + suffix


def _run(programs: Dict[object, object], order: List[object], state):
    fs = state
    for node in order:
        fs = eval_expr(programs[node], fs)
        if is_error(fs):
            return ERROR
    return fs


def _confirm(
    ctx: LintContext, graph, a, b, states
) -> Tuple[Optional[RaceWitness], bool]:
    """Try to produce a divergence witness for the pair.  Returns
    ``(witness, swept)`` where ``swept`` means every placement/state
    combination was evaluated (so the absence of a witness is concrete
    evidence of benignity, not a truncated search)."""
    stats = ctx.report.stats
    budget = ctx.options.max_confirm_evaluations
    for late in (True, False):
        order_ab, order_ba = _pair_orders(graph, a, b, late=late)
        for initial in states:
            if stats.confirm_evaluations + 2 > budget:
                stats.confirm_budget_exhausted = True
                return None, False
            stats.confirm_evaluations += 2
            out_ab = _run(ctx.programs, order_ab, initial)
            out_ba = _run(ctx.programs, order_ba, initial)
            if out_ab != out_ba:
                return (
                    RaceWitness(
                        a=str(a),
                        b=str(b),
                        initial=initial,
                        order_a=order_ab,
                        order_b=order_ba,
                        outcome_a=out_ab,
                        outcome_b=out_ba,
                    ),
                    True,
                )
    return None, True
