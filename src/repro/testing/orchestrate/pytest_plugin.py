"""pytest hook that streams per-test results into the results DB.

Activation is environment-gated: set ``REHEARSAL_RESULTS_DB`` to a
database path and every recorded run appends to it; leave it unset
(the default for local development) and the plugin does nothing and
imports nothing heavy.  ``tests/conftest.py`` delegates its
``pytest_configure`` here, so no pytest command-line flags are needed
— CI just exports the variable.

* ``REHEARSAL_RESULTS_DB`` — path of the SQLite database to append to.
* ``REHEARSAL_RUN_ID`` — optional run id; defaults to a
  timestamp+pid id.  Parallel workers (pytest-xdist sets
  ``PYTEST_XDIST_WORKER``) inherit the controller's id from the
  environment and skip the run bookkeeping rows, so all workers'
  results land under one run.

Seeds: tests that call ``record_property("seed", ...)`` (the fuzz and
Hypothesis suites do) get the seed persisted next to their outcome,
which is what lets ``rehearsal testreport`` print "this nodeid failed
under seed S" without scraping logs.
"""

from __future__ import annotations

import os
from typing import Optional

ENV_DB = "REHEARSAL_RESULTS_DB"
ENV_RUN_ID = "REHEARSAL_RUN_ID"
_XDIST_WORKER = "PYTEST_XDIST_WORKER"


class ResultsRecorder:
    """The registered plugin object; one per pytest process."""

    def __init__(self, db_path: str, run_id: Optional[str] = None):
        from repro.testing.orchestrate.resultsdb import (
            ResultsDB,
            default_run_id,
        )

        self.db = ResultsDB(db_path)
        self.run_id = run_id or os.environ.get(ENV_RUN_ID) or default_run_id()
        self.is_worker = _XDIST_WORKER in os.environ
        if not self.is_worker:
            self.db.begin_run(self.run_id, argv=list(os.sys.argv))

    def pytest_runtest_logreport(self, report):
        from repro.testing.orchestrate.resultsdb import TestResult

        # One row per test: the call phase, or a setup phase that did
        # not reach call (skips and setup errors).
        if report.when != "call" and not (
            report.when == "setup" and (report.skipped or report.failed)
        ):
            return
        seed = None
        for key, value in getattr(report, "user_properties", ()) or ():
            if key == "seed":
                seed = str(value)
                break
        self.db.record(
            self.run_id,
            TestResult(
                nodeid=report.nodeid,
                outcome=report.outcome,
                duration=getattr(report, "duration", 0.0) or 0.0,
                seed=seed,
                phase=report.when,
            ),
        )

    def pytest_sessionfinish(self, session, exitstatus):
        if not self.is_worker:
            self.db.finish_run(self.run_id, int(exitstatus))

    def pytest_unconfigure(self, config):
        self.db.close()


def install(config) -> Optional[ResultsRecorder]:
    """Register a recorder on ``config`` when ``REHEARSAL_RESULTS_DB``
    is set; the conftest calls this from ``pytest_configure``."""
    db_path = os.environ.get(ENV_DB)
    if not db_path:
        return None
    recorder = ResultsRecorder(db_path)
    config.pluginmanager.register(recorder, "rehearsal-results-recorder")
    return recorder


def pytest_configure(config):
    """Entry point when loaded with ``-p
    repro.testing.orchestrate.pytest_plugin`` directly."""
    if not config.pluginmanager.has_plugin("rehearsal-results-recorder"):
        install(config)
