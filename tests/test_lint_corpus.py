"""Pin the static analyzer's verdict on the full §6 corpus.

The six nondeterministic benchmarks must each be flagged with a
REH005 definite race at the right declaration span (lint's headline
claim: the paper's bug class, found without SAT); their six fixed
variants — and the seven deterministic benchmarks — must lint clean
(exit 0).
"""

import pytest

from repro.analysis.lint import Severity, lint_source
from repro.corpus import BENCHMARK_NAMES, FIXED_VARIANTS, load_source

NONDET = [n for n in BENCHMARK_NAMES if n.endswith("-nondet")]
DETERMINISTIC = [n for n in BENCHMARK_NAMES if not n.endswith("-nondet")]
FIXED = sorted(FIXED_VARIANTS)

#: name -> (REH005 span, REH005 resource, contended paths).  The span
#: points at the *primary* racing declaration in the shipped manifest;
#: editing a corpus manifest must update this table consciously.
EXPECTED_RACES = {
    "dns-nondet": ((14, 13), "Package['dnsmasq']", ("/etc/dnsmasq.d",)),
    "irc-nondet": ((12, 13), "Package['ngircd']", ("/etc",)),
    "logstash-nondet": (
        (11, 13),
        "Package['logstash']",
        ("/etc/logstash/conf.d",),
    ),
    "ntp-nondet": ((13, 13), "Package['ntp']", ("/etc", "/etc/ntp.conf")),
    "rsyslog-nondet": ((12, 13), "Package['rsyslog']", ("/etc/rsyslog.d",)),
    "xinetd-nondet": (
        (13, 13),
        "Package['xinetd']",
        ("/etc", "/etc/xinetd.conf"),
    ),
}


def lint(name):
    return lint_source(load_source(name), name=f"{name}.pp")


class TestNondeterministicBenchmarks:
    @pytest.mark.parametrize("name", NONDET)
    def test_flagged_with_definite_race(self, name):
        report = lint(name)
        assert not report.clean
        assert report.exit_code == 2
        races = [d for d in report.diagnostics if d.rule_id == "REH005"]
        assert races, f"{name}: lint must find the seeded race"
        assert all(d.severity == Severity.ERROR for d in races)

    @pytest.mark.parametrize("name", NONDET)
    def test_race_span_and_paths_pinned(self, name):
        report = lint(name)
        span, resource, paths = EXPECTED_RACES[name]
        race = next(d for d in report.diagnostics if d.rule_id == "REH005")
        assert (race.line, race.col) == span
        assert race.resource == resource
        assert tuple(race.paths) == paths
        assert race.file == f"{name}.pp"
        # The diagnostic names the other end of the race too.
        assert race.related

    @pytest.mark.parametrize("name", NONDET)
    def test_witness_is_self_validating(self, name):
        """Every REH005 carries a concrete divergence witness: two
        complete orders whose outcomes differ on a real initial
        state.  Zero false positives by construction."""
        report = lint(name)
        assert report.race_witnesses
        for w in report.race_witnesses:
            assert w.outcome_a != w.outcome_b
            assert w.order_a != w.order_b
            assert sorted(w.order_a) == sorted(w.order_b)


class TestCleanManifests:
    @pytest.mark.parametrize("name", FIXED)
    def test_fixed_variants_lint_clean(self, name):
        report = lint(name)
        assert report.clean, (
            f"{name}: fixed variant must lint clean, got "
            f"{[d.render() for d in report.diagnostics]}"
        )
        assert report.exit_code == 0
        assert not any(
            d.rule_id == "REH005" for d in report.diagnostics
        )

    @pytest.mark.parametrize("name", DETERMINISTIC)
    def test_deterministic_benchmarks_lint_clean(self, name):
        report = lint(name)
        assert report.clean, (
            f"{name}: deterministic benchmark must lint clean, got "
            f"{[d.render() for d in report.diagnostics]}"
        )
        assert report.exit_code == 0


class TestNoSat:
    @pytest.mark.parametrize("name", NONDET + FIXED)
    def test_lint_never_touches_the_solver(self, name, monkeypatch):
        """The analyzer is SAT-free by contract: constructing a solver
        during lint is a hard failure."""
        import repro.sat.solver as solver_mod

        def boom(*args, **kwargs):
            raise AssertionError("lint must not construct a SAT solver")

        monkeypatch.setattr(solver_mod.Solver, "__init__", boom)
        lint(name)
