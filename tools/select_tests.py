#!/usr/bin/env python3
"""CI shim: turn the PR's git diff into a minimal pytest invocation.

Reads the changed-file list from ``git diff --name-only <base>...HEAD``
(merge-base semantics, exactly what a PR job sees), feeds it through
the committed test map (``rehearsal testmap select``), and prints
**pytest path arguments** on stdout — one per line, suitable for

.. code-block:: bash

    python -m pytest $(python tools/select_tests.py --base origin/main)

Soundness contract (inherited from
:mod:`repro.testing.orchestrate.testmap`): whenever precision cannot
be guaranteed — the map is stale, a conftest changed, the diff
touches CI/deployment config (``.github/``, ``Dockerfile``) or an
unmapped file, or git/the map are unusable at all — the shim prints
``tests`` (the whole suite) and explains why on stderr.
The full matrix on main/nightly stays authoritative regardless; this
only trims PR feedback time.

Exit codes: 0 — selection printed (full fallback included); 2 — bad
invocation.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.testing.orchestrate import testmap as tm  # noqa: E402


def changed_files(base: str, root: Path) -> list:
    output = subprocess.check_output(
        ["git", "diff", "--name-only", f"{base}...HEAD"],
        cwd=root,
        text=True,
        stderr=subprocess.PIPE,
    )
    return [line.strip() for line in output.splitlines() if line.strip()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--base",
        default="origin/main",
        help="diff base ref (default: origin/main)",
    )
    parser.add_argument(
        "--root",
        default=str(REPO_ROOT),
        help="repository root (default: this checkout)",
    )
    parser.add_argument(
        "--map",
        default=tm.DEFAULT_MAP_PATH,
        help=f"map file relative to --root (default: {tm.DEFAULT_MAP_PATH})",
    )
    args = parser.parse_args(argv)
    root = Path(args.root)

    def full(reason: str) -> int:
        print(f"select_tests: full suite — {reason}", file=sys.stderr)
        print("tests")
        return 0

    try:
        changed = changed_files(args.base, root)
    except (subprocess.CalledProcessError, OSError) as exc:
        return full(f"cannot diff against {args.base!r}: {exc}")

    if not changed:
        return full(f"empty diff against {args.base!r} (rebase? merge?)")

    map_path = root / args.map
    if not map_path.is_file():
        return full(f"no test map at {map_path}")
    try:
        test_map = tm.TestMap.load(map_path)
    except (ValueError, OSError) as exc:
        return full(f"unreadable test map: {exc}")

    selection = tm.select(test_map, root, changed, map_path=args.map)
    for reason in selection.reasons:
        print(f"select_tests: {reason}", file=sys.stderr)
    if selection.mode == "full":
        print("tests")
        return 0
    print(
        f"select_tests: {len(selection.tests)}/"
        f"{selection.total_tests} test files "
        f"({selection.selected_fraction:.1%}) for {len(changed)} "
        "changed path(s)",
        file=sys.stderr,
    )
    if not selection.tests:
        # A provably-inert diff still runs one cheap smoke file so the
        # required check reports a real pytest run, not a no-op.
        print("select_tests: nothing mapped; running the smoke file",
              file=sys.stderr)
        print("tests/test_logic.py")
        return 0
    for test in selection.tests:
        print(test)
    return 0


if __name__ == "__main__":
    sys.exit(main())
