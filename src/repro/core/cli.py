"""Command-line interface.

Two commands behind one ``rehearsal`` entry point (see setup.py
``console_scripts``):

* ``rehearsal verify <manifest.pp> [flags]`` — single-manifest
  verification, mirroring the artifact's CLI (§8: "Rehearsal takes the
  platform name as a command-line flag").  For compatibility the
  subcommand word is optional: ``rehearsal <manifest.pp>`` still works.
* ``rehearsal verify-batch <dir-or-manifests...> [flags]`` — the batch
  service: fan a fleet of manifests out to worker processes behind the
  content-addressed verdict cache (:mod:`repro.service`).
* ``rehearsal serve [--port N --workers N --watch DIR --quota RPS]``
  — the long-running verification daemon (:mod:`repro.service.daemon`,
  docs/serve.md): an asyncio HTTP service fronting the batch verifier
  with a tiered verdict cache, a filesystem watcher streaming
  re-verification rows over long-poll ``/v1/events``, per-client
  token-bucket quotas, and ``/healthz`` + Prometheus ``/metrics``.
  Exit 0 on clean (SIGTERM/SIGINT) shutdown, 2 on bad invocation.
* ``rehearsal cache stats|clear|gc [--cache-dir DIR]`` — inspect and
  manage both on-disk caches: the verdict cache and the incremental
  store (:mod:`repro.service.incremental`); ``gc --max-bytes N``
  evicts oldest-first until each fits the budget.
* ``rehearsal cache-clear [--cache-dir DIR]`` — empty the verdict
  cache (entries keyed under old tool versions are unreachable and
  only ever reclaimed here); kept for compatibility, ``rehearsal
  cache clear`` also sweeps the incremental store.
* ``rehearsal solve <file.cnf>`` — run the SAT substrate (CNF
  preprocessing + CDCL) on a DIMACS instance, the standard way to
  debug the solving pipeline offline; ``--dump`` round-trips the
  post-preprocessing solver state back to DIMACS.  Exit codes follow
  the SAT-competition convention: 10 satisfiable, 20 unsatisfiable.
* ``rehearsal fuzz [--seed N --budget S --shrink --out DIR]`` —
  differential fuzzing: random catalogs through both the symbolic
  pipeline and the concrete interleavings oracle
  (:mod:`repro.testing`); exit 1 on any disagreement.
* ``rehearsal lint <manifests...> [--format text|json|sarif]`` — the
  catalog-level static analyzer (:mod:`repro.analysis.lint`): rule
  diagnostics with source spans, no SAT.  Exit 0 — clean (at most
  notes), 1 — warnings, 2 — errors, 3 — bad invocation.
* ``rehearsal testmap build|select|check`` — dependency-aware test
  selection over the static import graph
  (:mod:`repro.testing.orchestrate.testmap`).
* ``rehearsal burnin`` — SPRT burn-in promoting quarantined fuzz
  reproducers into the pinned regression corpus
  (:mod:`repro.testing.orchestrate.burnin`).
* ``rehearsal testreport --db <results.sqlite>`` — HTML/SVG report
  from the per-test results database
  (:mod:`repro.testing.orchestrate.report`).

Exit codes of the verify commands: 0 — verified (for the batch: every
manifest produced a verdict, and with ``--strict`` every verdict is
positive); 1 — a negative or missing verdict (batch: some manifest
errored, a verdict failed under ``--strict``, or the final ``--json``
write failed); 2 — bad invocation (unreadable manifest, no manifests
found, invalid ``--workers``/``--portfolio``/``--solver-workers``, a
bad or unresolvable ``--solver`` spec, ``--json`` pointing at a
directory or into a missing one).

Parallel solving (see docs/solver.md): ``--portfolio K`` races K
solver configurations per query, ``--solver-workers N`` turns on
cube-and-conquer exploration, and ``--solver external:auto`` shells
out to a SAT-competition binary found on PATH.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path as OsPath

from typing import Optional

from repro.analysis.determinism import DeterminismOptions
from repro.core.pipeline import Rehearsal
from repro.core.report import render_batch_report, render_report
from repro.resources.compiler import ModelContext
from repro.resources.package_db import PackageDatabase
from repro.sat.backend import parse_backend_spec


def _add_analysis_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by both commands (platform + §4 toggles)."""
    parser.add_argument(
        "--platform",
        default="ubuntu",
        help="target platform for package modeling (default: ubuntu)",
    )
    parser.add_argument(
        "--node",
        default="default",
        help="node name used to select node blocks",
    )
    parser.add_argument(
        "--no-pruning",
        action="store_true",
        help="disable file pruning (§4.4)",
    )
    parser.add_argument(
        "--no-commutativity",
        action="store_true",
        help="disable the commutativity reduction (§4.3)",
    )
    parser.add_argument(
        "--no-elimination",
        action="store_true",
        help="disable resource elimination (§4.4)",
    )
    parser.add_argument(
        "--strict-packages",
        action="store_true",
        help="fail on packages missing from the database instead of "
        "synthesizing a listing",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="analysis timeout in seconds (per manifest)",
    )
    parser.add_argument(
        "--lint-prefilter",
        action="store_true",
        help="prove determinism footprint-only when every unordered "
        "resource pair commutes (the lint fast path), skipping "
        "symbolic exploration and SAT entirely for such manifests",
    )
    parser.add_argument(
        "--solver",
        default="cdcl",
        metavar="SPEC",
        help="SAT backend: 'cdcl' (pure-Python reference, default), "
        "'portfolio[:K]' (race K solver configurations per query), or "
        "'external:auto|<name-or-path>' (a SAT-competition binary on "
        "PATH — kissat, cadical, minisat)",
    )
    parser.add_argument(
        "--portfolio",
        type=int,
        default=1,
        metavar="K",
        help="race K diversified CDCL configurations on every SAT "
        "query, first answer (by deterministic tie-breaking) wins "
        "(default: 1, no racing)",
    )
    parser.add_argument(
        "--solver-workers",
        type=int,
        default=1,
        metavar="N",
        help="parallel solve width: cube-and-conquer exploration of "
        "the reachable-state DAG plus the process pool for portfolio "
        "helpers (default: 1, sequential)",
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="reuse intermediate results (CNF blocks, commutativity "
        "pairs, exploration subtrees) from a persistent store across "
        "runs; verdicts are byte-identical to from-scratch runs "
        "(default: off, or REHEARSAL_INCREMENTAL=1)",
    )
    parser.add_argument(
        "--incremental-dir",
        metavar="DIR",
        default=None,
        help="directory holding the incremental store (default: the "
        "cache directory, see REHEARSAL_CACHE_DIR)",
    )


def _validate_solver_flags(args: argparse.Namespace) -> Optional[str]:
    """Validate --solver/--portfolio/--solver-workers before any pool
    or backend is constructed; returns an error message or None."""
    if args.portfolio < 1:
        return "--portfolio must be >= 1"
    if args.solver_workers < 1:
        return "--solver-workers must be >= 1"
    try:
        parse_backend_spec(
            args.solver,
            workers=args.solver_workers,
            portfolio=args.portfolio,
        )
    except ValueError as exc:
        return f"--solver: {exc}"
    return None


def _options_from_args(args: argparse.Namespace) -> DeterminismOptions:
    # --incremental only ever turns the store ON: without the flag the
    # dataclass default applies, which honors REHEARSAL_INCREMENTAL=1.
    extra = {}
    if args.incremental:
        extra["incremental"] = True
    if args.incremental_dir is not None:
        extra["incremental_dir"] = args.incremental_dir
    return DeterminismOptions(
        use_pruning=not args.no_pruning,
        use_commutativity=not args.no_commutativity,
        use_elimination=not args.no_elimination,
        timeout_seconds=args.timeout,
        lint_prefilter=args.lint_prefilter,
        solver=args.solver,
        portfolio=args.portfolio,
        solver_workers=args.solver_workers,
        **extra,
    )


# -- rehearsal verify ---------------------------------------------------------


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rehearsal",
        description=(
            "Verify that a Puppet manifest is deterministic and idempotent "
            "(reproduction of Shambaugh et al., PLDI 2016)."
        ),
        epilog=(
            "To verify a whole fleet of manifests in parallel behind a "
            "content-addressed verdict cache, use 'rehearsal verify-batch "
            "<dir-or-manifests...>' (see 'rehearsal verify-batch --help')."
        ),
    )
    parser.add_argument("manifest", help="path to a .pp manifest file")
    _add_analysis_flags(parser)
    parser.add_argument(
        "--explain",
        action="store_true",
        help="on non-determinism, narrate both diverging orders step "
        "by step on the witness machine state",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the verification: cProfile's top functions by "
        "cumulative time, plus the explore/encode/solve phase split "
        "from the determinacy stats",
    )
    return parser


def run_verify(argv) -> int:
    args = build_arg_parser().parse_args(argv)
    problem = _validate_solver_flags(args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    try:
        source = OsPath(args.manifest).read_text(encoding="utf8")
    except (OSError, UnicodeDecodeError) as exc:
        print(
            f"error: cannot read manifest {args.manifest}: {exc}",
            file=sys.stderr,
        )
        return 2
    context = ModelContext(
        package_db=PackageDatabase(synthesize=not args.strict_packages),
        platform=args.platform,
    )
    tool = Rehearsal(
        context=context, options=_options_from_args(args), node_name=args.node
    )
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    report = tool.verify(source, name=args.manifest)
    if profiler is not None:
        profiler.disable()
    print(render_report(report))
    if profiler is not None:
        from repro.core.report import render_profile

        print()
        print(render_profile(report, profiler))
    if (
        args.explain
        and report.determinism is not None
        and not report.determinism.deterministic
        and report.error is None
    ):
        from repro.core.report import render_explanation

        _, programs = tool.compile(source)
        print()
        print(
            render_explanation(
                report.determinism,
                programs,
                declared_at=report.declared_at,
                manifest_name=report.manifest_name,
            )
        )
    return 0 if report.ok else 1


# -- rehearsal verify-batch ---------------------------------------------------


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rehearsal verify-batch",
        description=(
            "Verify a fleet of Puppet manifests in parallel worker "
            "processes, caching verdicts by content so unchanged "
            "manifests re-verify instantly."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help="manifest files and/or directories (searched recursively "
        "for *.pp)",
    )
    _add_analysis_flags(parser)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="number of verification worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="verdict cache directory (default: $XDG_CACHE_HOME/rehearsal)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="verify everything from scratch; neither read nor write "
        "the verdict cache",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the machine-readable run report to PATH "
        "('-' for stdout)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any manifest fails verification, not only on "
        "errors",
    )
    return parser


def run_verify_batch(argv) -> int:
    from repro.service import BatchVerifier, VerdictCache, discover_manifests

    args = build_batch_parser().parse_args(argv)
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    problem = _validate_solver_flags(args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2

    if args.json not in (None, "-"):
        # Fail fast (without touching the filesystem): discovering the
        # path is unwritable only after the whole fleet has been
        # verified would waste the entire run.
        json_path = OsPath(args.json)
        problem = None
        if json_path.is_dir():
            problem = "path is a directory"
        elif not json_path.parent.is_dir():
            problem = f"parent directory {json_path.parent} does not exist"
        if problem is not None:
            print(
                f"error: cannot write --json {args.json}: {problem}",
                file=sys.stderr,
            )
            return 2

    paths = []
    for target in args.targets:
        try:
            paths.extend(discover_manifests(target))
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    # Overlapping targets (a directory plus a file inside it, possibly
    # spelled differently) must not produce duplicate rows or inflated
    # counts.
    seen = set()
    unique_paths = []
    for path in paths:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique_paths.append(path)
    paths = unique_paths
    if not paths:
        print(
            f"error: no *.pp manifests found under: {', '.join(args.targets)}",
            file=sys.stderr,
        )
        return 2

    verifier = BatchVerifier(
        options=_options_from_args(args),
        platform=args.platform,
        node_name=args.node,
        synthesize_packages=not args.strict_packages,
        workers=args.workers,
        cache=None if args.no_cache else VerdictCache(args.cache_dir),
    )
    report = verifier.verify_paths(paths)

    print(render_batch_report(report))
    if args.json == "-":
        print(report.to_json())
    elif args.json is not None:
        try:
            OsPath(args.json).write_text(
                report.to_json() + "\n", encoding="utf8"
            )
        except OSError as exc:
            print(
                f"error: cannot write --json {args.json}: {exc}",
                file=sys.stderr,
            )
            return 1

    if report.error_count:
        return 1
    if args.strict and report.failed_count:
        return 1
    return 0


# -- rehearsal serve ----------------------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rehearsal serve",
        description=(
            "Run the resident verification daemon: an asyncio HTTP "
            "service fronting the batch verifier behind a tiered "
            "(in-memory LRU over on-disk) verdict cache, with an "
            "optional filesystem watcher that re-verifies changed "
            "manifests and streams rows over long-poll /v1/events.  "
            "See docs/serve.md for the endpoint contract."
        ),
        epilog=(
            "Exit codes: 0 — clean shutdown on SIGTERM/SIGINT; "
            "2 — bad invocation or the service cannot start."
        ),
    )
    _add_analysis_flags(parser)
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1; 0.0.0.0 in Docker)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8421,
        help="TCP port (default: 8421; 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="verification worker threads; extra requests queue "
        "(default: 1)",
    )
    parser.add_argument(
        "--watch",
        metavar="DIR",
        default=None,
        help="re-verify any *.pp under DIR when it changes (stat-poll "
        "watcher; rows stream over /v1/events)",
    )
    parser.add_argument(
        "--quota",
        type=float,
        default=None,
        metavar="RPS",
        help="per-client token-bucket quota on /v1/* in requests per "
        "second; exhausted clients get 429 + Retry-After "
        "(default: no quota)",
    )
    parser.add_argument(
        "--quota-burst",
        type=int,
        default=None,
        metavar="N",
        help="token-bucket capacity (default: ceil of --quota)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="verdict cache directory (default: $XDG_CACHE_HOME/rehearsal)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="verify every request from scratch; disables /v1/verdicts",
    )
    parser.add_argument(
        "--lru-capacity",
        type=int,
        default=None,
        metavar="N",
        help="in-process LRU tier size in verdicts (default: 1024)",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="watcher stat-poll cadence in seconds (default: 0.5)",
    )
    parser.add_argument(
        "--debounce",
        type=float,
        default=0.25,
        help="quiet period before a changed manifest re-verifies, "
        "coalescing rapid successive writes (default: 0.25)",
    )
    return parser


def run_serve(argv) -> int:
    from repro.service.daemon import DaemonConfig, run_daemon

    args = build_serve_parser().parse_args(argv)
    problem = _validate_solver_flags(args)
    if problem is None and args.workers < 1:
        problem = "--workers must be >= 1"
    if problem is None and args.port < 0:
        problem = "--port must be >= 0"
    if problem is None and args.quota is not None and args.quota <= 0:
        problem = "--quota must be positive"
    if problem is None and (
        args.quota_burst is not None and args.quota_burst < 1
    ):
        problem = "--quota-burst must be >= 1"
    if problem is None and args.quota_burst is not None and args.quota is None:
        problem = "--quota-burst needs --quota"
    if problem is None and (
        args.lru_capacity is not None and args.lru_capacity < 1
    ):
        problem = "--lru-capacity must be >= 1"
    if problem is None and args.poll_interval <= 0:
        problem = "--poll-interval must be positive"
    if problem is None and args.debounce < 0:
        problem = "--debounce must be >= 0"
    if problem is None and args.watch is not None:
        if not OsPath(args.watch).is_dir():
            problem = f"--watch: no such directory: {args.watch}"
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2

    from repro.service.tiered import DEFAULT_CAPACITY

    config = DaemonConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        watch=args.watch,
        quota=args.quota,
        quota_burst=args.quota_burst,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        lru_capacity=(
            args.lru_capacity
            if args.lru_capacity is not None
            else DEFAULT_CAPACITY
        ),
        options=_options_from_args(args),
        platform=args.platform,
        node_name=args.node,
        synthesize_packages=not args.strict_packages,
        poll_interval=args.poll_interval,
        debounce=args.debounce,
    )
    return run_daemon(config)


# -- rehearsal cache-clear ----------------------------------------------------


def run_cache_clear(argv) -> int:
    from repro.service import VerdictCache

    parser = argparse.ArgumentParser(
        prog="rehearsal cache-clear",
        description="Delete every entry from the verdict cache.",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="verdict cache directory (default: $XDG_CACHE_HOME/rehearsal)",
    )
    args = parser.parse_args(argv)
    cache = VerdictCache(args.cache_dir)
    removed = cache.clear()
    print(f"removed {removed} cached verdict(s) from {cache.directory}")
    return 0


# -- rehearsal cache ----------------------------------------------------------


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rehearsal cache",
        description=(
            "Inspect and manage the on-disk caches: the verdict cache "
            "(one JSON entry per verified manifest) and the "
            "incremental store (CNF blocks, commutativity pairs, "
            "exploration subtrees reused across runs).  Both live in "
            "the cache directory (REHEARSAL_CACHE_DIR, else "
            "$XDG_CACHE_HOME/rehearsal)."
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REHEARSAL_CACHE_DIR, else "
        "$XDG_CACHE_HOME/rehearsal)",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    sub.add_parser(
        "stats", help="entry counts and on-disk bytes for both caches"
    )
    sub.add_parser(
        "clear", help="delete every verdict entry and incremental row"
    )
    gc = sub.add_parser(
        "gc",
        help="evict oldest entries until both caches fit the budget",
    )
    gc.add_argument(
        "--max-bytes",
        type=int,
        required=True,
        help="per-cache size budget in bytes; oldest entries go first",
    )
    return parser


def run_cache(argv) -> int:
    from repro.service import VerdictCache
    from repro.service.incremental import IncrementalStore, default_store_path

    args = build_cache_parser().parse_args(argv)
    cache = VerdictCache(args.cache_dir)
    store = IncrementalStore(default_store_path(args.cache_dir))

    if args.action == "stats":
        vstats = cache.stats()
        istats = store.stats()
        print(f"cache directory: {vstats['directory']}")
        print(
            f"verdict cache: {vstats['entries']} entrie(s), "
            f"{vstats['bytes']} bytes"
        )
        if store.disabled:
            print("incremental store: unavailable")
        else:
            print(
                f"incremental store: {istats.get('entries', 0)} row(s), "
                f"{istats.get('bytes', 0)} bytes on disk"
            )
            for section, counts in sorted(
                istats.get("sections", {}).items()
            ):
                print(
                    f"  {section}: {counts['entries']} row(s), "
                    f"{counts['bytes']} bytes"
                )
        return 0

    if args.action == "clear":
        removed = cache.clear()
        rows = store.clear()
        print(
            f"removed {removed} cached verdict(s) and {rows} "
            f"incremental row(s) from {cache.directory}"
        )
        return 0

    if args.action == "gc":
        if args.max_bytes < 0:
            print("error: --max-bytes must be >= 0", file=sys.stderr)
            return 2
        removed = cache.gc(args.max_bytes)
        rows = store.gc(args.max_bytes)
        print(
            f"evicted {removed} cached verdict(s) and {rows} "
            f"incremental row(s) to fit {args.max_bytes} bytes"
        )
        return 0

    return 2  # unreachable: argparse requires an action


# -- rehearsal solve ----------------------------------------------------------


def run_solve(argv) -> int:
    """Solve a DIMACS CNF file with the preprocessing + CDCL pipeline.

    Exit codes: 10 satisfiable, 20 unsatisfiable, 2 bad invocation —
    the SAT-competition convention, so the subcommand slots into
    standard solver harnesses.
    """
    from repro.sat.dimacs import read_dimacs
    from repro.sat.preprocess import preprocess
    from repro.sat.solver import Solver

    parser = argparse.ArgumentParser(
        prog="rehearsal solve",
        description=(
            "Decide satisfiability of a DIMACS CNF file using "
            "Rehearsal's SAT substrate (CNF preprocessing + CDCL)."
        ),
    )
    parser.add_argument("cnf", help="path to a DIMACS .cnf file")
    parser.add_argument(
        "--no-preprocess",
        action="store_true",
        help="feed the raw clauses to the CDCL solver unsimplified",
    )
    parser.add_argument(
        "--dump",
        metavar="PATH",
        default=None,
        help="write the (post-preprocessing) solver clause database "
        "back out as DIMACS before solving",
    )
    args = parser.parse_args(argv)

    from repro.errors import SolverError

    try:
        with open(args.cnf, "r", encoding="utf8") as handle:
            clauses, num_vars = read_dimacs(handle)
    except (OSError, UnicodeDecodeError, ValueError, SolverError) as exc:
        print(f"error: cannot read CNF {args.cnf}: {exc}", file=sys.stderr)
        return 2

    pre = None
    solver = Solver()
    if args.no_preprocess:
        for clause in clauses:
            solver.add_clause(clause)
        print(f"c {len(clauses)} clauses, {num_vars} vars (no preprocessing)")
    else:
        pre = preprocess(clauses, num_vars)
        print(
            f"c {len(clauses)} clauses, {num_vars} vars -> "
            f"{len(pre.clauses)} clauses after preprocessing "
            f"({pre.stats.units_fixed} units, "
            f"{pre.stats.pure_literals} pure, "
            f"{pre.stats.subsumed} subsumed, "
            f"{pre.stats.strengthened} strengthened, "
            f"{pre.stats.eliminated_vars} vars eliminated)"
        )
        if pre.unsat:
            solver.add_clause([])  # reflect the verdict in any dump
            if args.dump is not None:
                try:
                    _dump_solver(args.dump, solver)
                except OSError as exc:
                    print(
                        f"error: cannot write --dump {args.dump}: {exc}",
                        file=sys.stderr,
                    )
                    return 2
            print("s UNSATISFIABLE")
            return 20
        for clause in pre.clauses:
            solver.add_clause(clause)
        # Re-assert the forced units preprocessing consumed: without
        # them a --dump would be merely equisatisfiable, and a model
        # read off the dumped file could violate the original
        # instance.  (Variables removed by pure-literal/variable
        # elimination stay unconstrained in the dump — reconstructing
        # their values needs the in-process model-reconstruction map.)
        for var, value in pre.assigned.items():
            solver.add_clause([var if value else -var])
    solver.ensure_vars(num_vars)

    if args.dump is not None:
        try:
            _dump_solver(args.dump, solver)
        except OSError as exc:
            print(
                f"error: cannot write --dump {args.dump}: {exc}",
                file=sys.stderr,
            )
            return 2

    result = solver.solve()
    if not result.sat:
        print("s UNSATISFIABLE")
        return 20
    model = dict(result.assignment)
    if pre is not None:
        model = pre.reconstruct(model)
    print("s SATISFIABLE")
    lits = [
        (var if model.get(var, False) else -var)
        for var in range(1, num_vars + 1)
    ]
    print("v " + " ".join(str(lit) for lit in lits) + " 0")
    return 10


def _dump_solver(path: str, solver) -> None:
    from repro.sat.dimacs import write_solver

    with open(path, "w", encoding="utf8") as handle:
        write_solver(
            handle,
            solver,
            comments=["dumped by 'rehearsal solve --dump'"],
        )


# -- rehearsal fuzz -----------------------------------------------------------


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rehearsal fuzz",
        description=(
            "Differential fuzzing: generate random catalogs, verify "
            "each with the real symbolic pipeline AND a concrete "
            "all-interleavings oracle, and fail on any disagreement. "
            "Runs are reproducible: the same --seed and --budget "
            "produce the same cases and a byte-identical summary."
        ),
        epilog=(
            "Exit codes: 0 — every case agreed; 1 — disagreement(s) "
            "found; 2 — bad invocation; 3 — the wall clock stopped "
            "the run before an explicit --cases quota completed."
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="master seed of the case stream (default: 0); the "
        "nightly job derives one from the date",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="time budget in seconds; buys a deterministic case quota "
        "(5 cases per second) with the wall clock as a safety stop "
        "(default: 60, or sized to fit an explicit --cases)",
    )
    parser.add_argument(
        "--cases",
        type=int,
        default=None,
        help="run exactly this many cases instead of the "
        "budget-derived quota",
    )
    parser.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug every disagreeing case to a minimal "
        "reproducer before reporting it",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write summary.json plus one reproducer .pp per "
        "disagreement into DIR (created if missing)",
    )
    parser.add_argument(
        "--max-resources",
        type=int,
        default=6,
        help="largest generated catalog (cap 7: the oracle enumerates "
        "every topological order; default: 6)",
    )
    parser.add_argument(
        "--edge-density",
        type=float,
        default=0.25,
        help="probability of a dependency edge per resource pair "
        "(default: 0.25)",
    )
    parser.add_argument(
        "--path-contention",
        type=float,
        default=0.35,
        help="probability a generated file reuses an already-targeted "
        "path (default: 0.35)",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="also run the static analyzer on every case and "
        "cross-examine it against the oracle: a definite race "
        "(REH005) the oracle refutes is a failing lint_false_race "
        "disagreement; races lint misses are counted, not failures",
    )
    parser.add_argument(
        "--portfolio",
        type=int,
        default=1,
        metavar="K",
        help="verify every generated case with a K-member solver "
        "portfolio instead of the sequential backend, keeping the "
        "differential oracle honest against the parallel path "
        "(default: 1)",
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="verify every generated case with the persistent "
        "incremental store enabled, keeping the differential oracle "
        "honest against the cross-run reuse path (default: off, or "
        "REHEARSAL_INCREMENTAL=1)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-case progress lines",
    )
    parser.add_argument(
        "--replay",
        metavar="REPRODUCER",
        default=None,
        help="replay a single committed reproducer .pp through the "
        "differential pipeline instead of fuzzing; exit 0 if the "
        "disagreement stays fixed and the pinned verdicts hold "
        "(this is the burn-in trial executor)",
    )
    parser.add_argument(
        "--oracle-seed",
        type=int,
        default=None,
        help="with --replay: override the oracle seed instead of "
        "using the header's (burn-in varies it per trial)",
    )
    return parser


def _budget_for_cases(cases: int) -> float:
    """A wall-clock safety stop comfortably above the quota's nominal
    pace (5 cases/second), so 'reproduce with --cases N' commands never
    stop short on a slower machine."""
    from repro.testing import CASES_PER_SECOND

    return max(60.0, 2.0 * cases / CASES_PER_SECOND)


def run_fuzz(argv) -> int:
    from repro.testing import FuzzSession, GeneratorConfig
    from repro.testing.regressions import format_reproducer

    args = build_fuzz_parser().parse_args(argv)
    if args.replay is not None:
        return _run_replay(args)
    if args.oracle_seed is not None:
        print(
            "error: --oracle-seed only makes sense with --replay",
            file=sys.stderr,
        )
        return 2
    if args.budget is not None and args.budget <= 0:
        print("error: --budget must be positive", file=sys.stderr)
        return 2
    if args.cases is not None and args.cases < 1:
        print("error: --cases must be >= 1", file=sys.stderr)
        return 2
    if args.portfolio < 1:
        print("error: --portfolio must be >= 1", file=sys.stderr)
        return 2
    budget = args.budget
    if budget is None:
        # An explicit --cases must never be truncated by the default
        # wall clock: size the safety stop to the requested quota.
        budget = (
            _budget_for_cases(args.cases)
            if args.cases is not None
            else 60.0
        )
    try:
        config = GeneratorConfig(
            max_resources=args.max_resources,
            edge_density=args.edge_density,
            path_contention=args.path_contention,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out_dir = None
    if args.out is not None:
        out_dir = OsPath(args.out)
        try:
            out_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            print(
                f"error: cannot create --out {args.out}: {exc}",
                file=sys.stderr,
            )
            return 2

    knob_flags = ""
    if args.max_resources != 6:
        knob_flags += f" --max-resources {args.max_resources}"
    if args.edge_density != 0.25:
        knob_flags += f" --edge-density {args.edge_density:g}"
    if args.path_contention != 0.35:
        knob_flags += f" --path-contention {args.path_contention:g}"

    progress = (
        (lambda message: None)
        if args.quiet
        else (lambda message: print(f"  {message}"))
    )
    session = FuzzSession(
        seed=args.seed,
        budget_seconds=budget,
        cases=args.cases,
        shrink=args.shrink,
        generator_config=config,
        options=(
            DeterminismOptions(
                portfolio=args.portfolio,
                incremental=args.incremental
                or DeterminismOptions().incremental,
            )
            if args.portfolio > 1 or args.incremental
            else None
        ),
        progress=progress,
        lint=args.lint,
    )
    print(
        f"fuzzing with seed {args.seed}: "
        f"{session.quota} cases (budget {budget:g}s)"
    )
    summary = session.run()

    counts = ", ".join(
        f"{count} {verdict}"
        for verdict, count in sorted(summary.verdict_counts.items())
    )
    print(
        f"ran {summary.cases_run}/{summary.case_quota} cases in "
        f"{summary.elapsed_seconds:.1f}s: {counts or 'nothing'}"
    )
    if summary.lint_enabled:
        print(
            f"lint: {summary.lint_definite_races} case(s) with definite "
            f"races, {summary.lint_false_races} false race(s), "
            f"{summary.lint_missed_definite_races} missed definite "
            "race(s)"
        )
    truncated_failure = False
    if summary.truncated:
        if args.cases is not None:
            # An explicit --cases pins the coverage; delivering less
            # must not read as success (the CI smoke relies on this).
            print(
                f"error: wall clock stopped the run at "
                f"{summary.cases_run}/{args.cases} requested cases",
                file=sys.stderr,
            )
            truncated_failure = True
        else:
            print("warning: wall-clock budget exhausted before the quota")

    if out_dir is not None:
        (out_dir / "summary.json").write_text(
            summary.to_json(), encoding="utf8"
        )
        for finding in summary.findings:
            repro = finding.reproducer
            outcome = finding.reproducer_outcome
            text = format_reproducer(
                repro.source,
                seed=repro.master_seed,
                case_id=repro.case_id,
                disagreement=",".join(finding.outcome.kinds()),
                expected_deterministic=outcome.oracle_deterministic,
                expected_idempotent=outcome.oracle_idempotent,
                bug_class=repro.bug,
                found_by=f"fuzz-seed-{repro.master_seed}",
            )
            (out_dir / f"repro-{repro.case_id}.pp").write_text(
                text, encoding="utf8"
            )
        print(f"wrote summary.json to {out_dir}")

    if summary.findings:
        print(
            f"\n{summary.disagreement_count} DISAGREEMENT(S) between "
            "the pipeline and the concrete oracle:",
            file=sys.stderr,
        )
        for finding in summary.findings:
            kinds = ",".join(finding.outcome.kinds())
            # Cases are a pure function of (seed, case_id, generator
            # config), so the hint must echo non-default knobs;
            # --cases sizes its own wall clock, no --budget needed.
            print(
                f"  - case {finding.case.case_id} "
                f"({finding.case.bug}): {kinds}; reproduce with "
                f"--seed {finding.case.master_seed} "
                f"--cases {finding.case.case_id + 1}{knob_flags}",
                file=sys.stderr,
            )
        return 1
    if truncated_failure:
        return 3
    print("no disagreements.")
    return 0


def _run_replay(args) -> int:
    from repro.testing.replay import replay_file

    path = OsPath(args.replay)
    if not path.is_file():
        print(f"error: no such reproducer: {path}", file=sys.stderr)
        return 2
    result = replay_file(path, oracle_seed=args.oracle_seed)
    seed = result.oracle_seed
    if result.ok:
        outcome = result.outcome
        print(
            f"{path.name}: still fixed under oracle seed {seed} "
            f"(deterministic={outcome.pipeline_deterministic}, "
            f"idempotent={outcome.pipeline_idempotent})"
        )
        return 0
    print(f"{path.name}: REPLAY FAILED", file=sys.stderr)
    for problem in result.problems:
        print(f"  - {problem}", file=sys.stderr)
    return 1


# -- rehearsal lint -----------------------------------------------------------


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rehearsal lint",
        description=(
            "Statically analyze Puppet manifests against the "
            "Rehearsal rule catalogue (REH001..): races, duplicate "
            "path claims, dangling references, cycles, filesystem "
            "hygiene — with source-span diagnostics and zero SAT "
            "queries.  See docs/lint.md for the rules."
        ),
        epilog=(
            "Exit codes: 0 — clean (at most notes); 1 — warnings; "
            "2 — errors; 3 — bad invocation."
        ),
    )
    parser.add_argument(
        "manifests", nargs="+", help="paths to .pp manifest files"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text); sarif emits one SARIF "
        "2.1.0 log covering every linted manifest",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--protect",
        metavar="PATH",
        action="append",
        default=[],
        help="flag writes inside this subtree (REH010); repeatable",
    )
    parser.add_argument(
        "--no-confirm",
        action="store_true",
        help="skip the concrete two-order confirmation of race "
        "candidates; every candidate stays a possible-race warning",
    )
    parser.add_argument(
        "--disable",
        metavar="RULE",
        action="append",
        default=[],
        help="suppress a rule id (e.g. --disable REH009); repeatable",
    )
    parser.add_argument(
        "--platform",
        default="ubuntu",
        help="target platform for package modeling (default: ubuntu)",
    )
    parser.add_argument(
        "--node",
        default="default",
        help="node name used to select node blocks",
    )
    parser.add_argument(
        "--strict-packages",
        action="store_true",
        help="fail on packages missing from the database instead of "
        "synthesizing a listing",
    )
    return parser


def run_lint(argv) -> int:
    import json as _json

    from repro import __version__
    from repro.analysis.lint import LintOptions, lint_source, render_sarif
    from repro.fs.paths import Path as FsPath

    args = build_lint_parser().parse_args(argv)
    try:
        protected = tuple(FsPath.of(p) for p in args.protect)
    except ValueError as exc:
        print(f"error: bad --protect path: {exc}", file=sys.stderr)
        return 3
    options = LintOptions(
        confirm_races=not args.no_confirm,
        protected=protected,
        disabled=tuple(args.disable),
    )
    context = ModelContext(
        package_db=PackageDatabase(synthesize=not args.strict_packages),
        platform=args.platform,
    )

    reports = []
    for manifest in args.manifests:
        try:
            source = OsPath(manifest).read_text(encoding="utf8")
        except (OSError, UnicodeDecodeError) as exc:
            print(
                f"error: cannot read manifest {manifest}: {exc}",
                file=sys.stderr,
            )
            return 3
        reports.append(
            lint_source(
                source,
                name=manifest,
                options=options,
                context=context,
                node_name=args.node,
            )
        )

    if args.format == "sarif":
        output = render_sarif(reports, tool_version=__version__)
    elif args.format == "json":
        output = (
            _json.dumps(
                {
                    "schema": 1,
                    "manifests": [r.to_dict() for r in reports],
                },
                indent=2,
            )
            + "\n"
        )
    else:
        output = "\n\n".join(r.render() for r in reports) + "\n"

    if args.out is not None:
        try:
            OsPath(args.out).write_text(output, encoding="utf8")
        except OSError as exc:
            print(
                f"error: cannot write --out {args.out}: {exc}",
                file=sys.stderr,
            )
            return 3
    else:
        sys.stdout.write(output)

    return max(r.exit_code for r in reports)


# -- rehearsal testmap --------------------------------------------------------


def build_testmap_parser() -> argparse.ArgumentParser:
    from repro.testing.orchestrate.testmap import DEFAULT_MAP_PATH

    parser = argparse.ArgumentParser(
        prog="rehearsal testmap",
        description=(
            "Dependency-aware test selection: build a content-hashed "
            "module-to-test map from the static import graph, turn a "
            "changed-file list into the minimal pytest file list "
            "(falling back to the full suite whenever precision "
            "cannot be guaranteed), or check the committed map for "
            "drift."
        ),
        epilog=(
            "Exit codes: 0 — done (select always succeeds: a "
            "fallback IS a valid selection); 1 — check found drift; "
            "2 — bad invocation."
        ),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root to scan (default: current directory)",
    )
    parser.add_argument(
        "--map",
        default=DEFAULT_MAP_PATH,
        help=f"map file, relative to --root (default: {DEFAULT_MAP_PATH})",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("build", help="scan the repo and (re)write the map")
    select = sub.add_parser(
        "select",
        help="map changed paths to the minimal test subset",
    )
    select.add_argument(
        "--changed",
        nargs="+",
        required=True,
        metavar="PATH",
        help="changed paths (repo-relative or absolute)",
    )
    select.add_argument(
        "--json",
        action="store_true",
        help="emit the full selection record as JSON instead of the "
        "line-oriented test list",
    )
    sub.add_parser(
        "check",
        help="rebuild from the working tree and fail on any drift "
        "from the committed map",
    )
    return parser


def run_testmap(argv) -> int:
    import json as json_mod

    from repro.testing.orchestrate import testmap as tm

    args = build_testmap_parser().parse_args(argv)
    root = OsPath(args.root)
    map_path = root / args.map

    if args.command == "build":
        built = tm.build_map(root)
        map_path.parent.mkdir(parents=True, exist_ok=True)
        built.save(map_path)
        print(
            f"wrote {map_path}: {len(built.modules)} modules, "
            f"{len(built.tests)} test files, "
            f"{len(built.global_modules)} conftest dependencies"
        )
        return 0

    if args.command == "check":
        if not map_path.is_file():
            print(f"error: no map at {map_path}", file=sys.stderr)
            return 1
        committed = tm.TestMap.load(map_path)
        problems = tm.check_drift(committed, tm.build_map(root))
        if problems:
            print(
                f"{map_path} has drifted from the working tree:",
                file=sys.stderr,
            )
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            print(
                "rebuild with 'rehearsal testmap build'",
                file=sys.stderr,
            )
            return 1
        print(f"{map_path} is up to date")
        return 0

    # select
    if not map_path.is_file():
        print(f"error: no map at {map_path}", file=sys.stderr)
        return 2
    try:
        test_map = tm.TestMap.load(map_path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    selection = tm.select(
        test_map, root, args.changed, map_path=args.map
    )
    if args.json:
        print(json_mod.dumps(selection.to_dict(), indent=2))
        return 0
    fraction = selection.selected_fraction
    print(
        f"# mode: {selection.mode} "
        f"({len(selection.tests) if selection.mode == 'subset' else selection.total_tests}"
        f"/{selection.total_tests} test files, {fraction:.1%})"
    )
    try:
        for reason in selection.reasons:
            print(f"# reason: {reason}")
        for test in selection.tests:
            print(test)
    except BrokenPipeError:
        # The consumer (head, xargs) closed the pipe early; the
        # selection itself succeeded.  Point stdout at devnull so the
        # interpreter's exit-time flush doesn't raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


# -- rehearsal burnin ---------------------------------------------------------


def build_burnin_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rehearsal burnin",
        description=(
            "Replay every quarantined fuzz reproducer repeatedly "
            "under a sequential probability ratio test: promote "
            "stable ones into the pinned regression corpus (with a "
            "machine-readable promotion record in promotions.json), "
            "demote flaky ones aside with a flake-rate estimate."
        ),
        epilog=(
            "Exit codes: 0 — every processed file promoted (or the "
            "quarantine was empty); 1 — something demoted, invalid, "
            "or undecided; 2 — bad invocation."
        ),
    )
    parser.add_argument(
        "--quarantine",
        default="tests/regressions/quarantine",
        help="quarantine directory (default: "
        "tests/regressions/quarantine)",
    )
    parser.add_argument(
        "--pinned",
        default="tests/regressions",
        help="pinned corpus directory promotions move into "
        "(default: tests/regressions)",
    )
    parser.add_argument(
        "--base-seed",
        type=int,
        default=0,
        help="oracle seed of trial 0; trial i uses base+i "
        "(default: 0)",
    )
    parser.add_argument(
        "--max-trials",
        type=int,
        default=None,
        help="cap on trials per file before 'undecided' "
        "(default: 40)",
    )
    parser.add_argument(
        "--p-stable",
        type=float,
        default=None,
        help="pass probability under the 'stable' hypothesis "
        "(default: 0.99)",
    )
    parser.add_argument(
        "--p-flaky",
        type=float,
        default=None,
        help="pass probability under the 'flaky' hypothesis "
        "(default: 0.70)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="decide but move nothing and write no ledger",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the full burn-in report as JSON",
    )
    return parser


def run_burnin(argv) -> int:
    from repro.testing.orchestrate.burnin import burn_in
    from repro.testing.orchestrate.sprt import SprtConfig

    args = build_burnin_parser().parse_args(argv)
    quarantine = OsPath(args.quarantine)
    if not quarantine.is_dir():
        print(
            f"error: no quarantine directory: {quarantine}",
            file=sys.stderr,
        )
        return 2
    overrides = {
        key: value
        for key, value in (
            ("max_trials", args.max_trials),
            ("p_stable", args.p_stable),
            ("p_flaky", args.p_flaky),
        )
        if value is not None
    }
    try:
        config = SprtConfig(**overrides)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = burn_in(
        quarantine,
        OsPath(args.pinned),
        config=config,
        apply=not args.dry_run,
        base_seed=args.base_seed,
        progress=lambda message: print(f"  {message}"),
    )
    if args.json is not None:
        OsPath(args.json).write_text(report.to_json(), encoding="utf8")
    promoted, demoted = report.promoted, report.demoted
    undecided, invalid = report.undecided, report.invalid
    print(
        f"burn-in over {len(report.records)} quarantined file(s): "
        f"{len(promoted)} promoted, {len(demoted)} demoted, "
        f"{len(undecided)} undecided, {len(invalid)} invalid"
        + (" (dry run, nothing moved)" if args.dry_run else "")
    )
    for record in demoted:
        print(
            f"  flaky: {record.file} "
            f"(flake rate {record.flake_rate:.0%} over "
            f"{record.trials} trials)",
            file=sys.stderr,
        )
    for record in invalid:
        for problem in record.problems:
            print(f"  invalid: {problem}", file=sys.stderr)
    return 0 if not (demoted or undecided or invalid) else 1


# -- rehearsal testreport -----------------------------------------------------


def build_testreport_parser() -> argparse.ArgumentParser:
    from repro.testing.orchestrate.testmap import DEFAULT_MAP_PATH

    parser = argparse.ArgumentParser(
        prog="rehearsal testreport",
        description=(
            "Render the per-test results database (written by the "
            "REHEARSAL_RESULTS_DB pytest hook) as an HTML report "
            "with per-module duration trends, plus an SVG DAG of "
            "the module-to-test import graph from the committed "
            "test map."
        ),
    )
    parser.add_argument(
        "--db",
        required=True,
        help="results database (created empty if missing)",
    )
    parser.add_argument(
        "--out",
        default="test-report",
        help="output directory (default: test-report)",
    )
    parser.add_argument(
        "--map",
        default=DEFAULT_MAP_PATH,
        help="test map for the DAG; skipped if the file is absent "
        f"(default: {DEFAULT_MAP_PATH})",
    )
    parser.add_argument(
        "--trend-runs",
        type=int,
        default=20,
        help="runs to include in the duration trends (default: 20)",
    )
    return parser


def run_testreport(argv) -> int:
    from repro.testing.orchestrate.report import write_report

    args = build_testreport_parser().parse_args(argv)
    if args.trend_runs < 1:
        print("error: --trend-runs must be >= 1", file=sys.stderr)
        return 2
    written = write_report(
        OsPath(args.db),
        OsPath(args.out),
        map_path=args.map,
        trend_runs=args.trend_runs,
    )
    for path in written:
        print(f"wrote {path}")
    return 0


# -- dispatch -----------------------------------------------------------------


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "verify-batch":
        return run_verify_batch(argv[1:])
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    if argv and argv[0] == "cache-clear":
        return run_cache_clear(argv[1:])
    if argv and argv[0] == "cache":
        return run_cache(argv[1:])
    if argv and argv[0] == "solve":
        return run_solve(argv[1:])
    if argv and argv[0] == "fuzz":
        return run_fuzz(argv[1:])
    if argv and argv[0] == "lint":
        return run_lint(argv[1:])
    if argv and argv[0] == "testmap":
        return run_testmap(argv[1:])
    if argv and argv[0] == "burnin":
        return run_burnin(argv[1:])
    if argv and argv[0] == "testreport":
        return run_testreport(argv[1:])
    if argv and argv[0] == "verify":
        argv = argv[1:]
    return run_verify(argv)


if __name__ == "__main__":
    sys.exit(main())
