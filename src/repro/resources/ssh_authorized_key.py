"""FS model for ``ssh_authorized_key`` (§3.3 "SSH keys").

Each key is one logical line of a user's ``authorized_keys`` file.  Per
the paper, keys are modeled in a disjoint filesystem region (one file
per key under ``/etc/ssh_keys/<user>/``) *plus* a write to the real
key-file path ``/home/<user>/.ssh/authorized_keys`` so that a ``file``
resource clobbering the key-file is correctly flagged as
non-commuting.  The key-file write is an idempotent "managed" marker:
two keys of the same user agree on it (they commute), but a file
resource with other content conflicts.

The key-file lives under the user's home directory, so a missing
``user`` dependency surfaces as an error — the real-world benchmark bug
of §6.
"""

from __future__ import annotations

from repro.errors import ResourceModelError
from repro.fs import Expr, Path, creat, file_, file_with, ite, rm, seq, ID
from repro.resources.base import Resource, guarded_mkdir
from repro.resources.user import home_path

KEYS_ROOT = Path.of("/etc/ssh_keys")


def logical_key_path(user: str, title: str) -> Path:
    safe_title = title.replace("/", "_")
    return KEYS_ROOT.child(user).child(safe_title)


def keyfile_path(user: str) -> Path:
    return home_path(user).child(".ssh").child("authorized_keys")


def keyfile_marker(user: str) -> str:
    return f"ssh-managed:{user}"


def compile_ssh_authorized_key(resource: Resource, context) -> Expr:
    user = resource.get_str("user")
    if user is None:
        raise ResourceModelError(
            f"{resource.ref}: the user attribute is required"
        )
    ensure = (resource.get_str("ensure") or "present").lower()
    key = resource.get_str("key") or resource.title
    logical = logical_key_path(user, resource.title)
    keyfile = keyfile_path(user)
    if ensure == "present":
        return seq(
            # Logical entry: unique per key, so distinct keys coexist.
            guarded_mkdir(KEYS_ROOT),
            guarded_mkdir(KEYS_ROOT.child(user)),
            _set_unless_present(logical, f"key:{user}:{resource.title}:{key}"),
            # Real key-file: requires the home directory (user resource).
            guarded_mkdir(home_path(user).child(".ssh")),
            _set_unless_present(keyfile, keyfile_marker(user)),
        )
    if ensure == "absent":
        return ite(file_(logical), rm(logical), ID)
    raise ResourceModelError(
        f"{resource.ref}: unsupported ensure => {ensure!r}"
    )


def _set_unless_present(path: Path, content: str) -> Expr:
    return ite(
        file_with(path, content),
        ID,
        seq(ite(file_(path), rm(path), ID), creat(path, content)),
    )
