"""Tests for DIMACS I/O and the solver on round-tripped instances."""

import io

import pytest

from repro.errors import SolverError
from repro.sat import (
    dimacs_to_string,
    read_dimacs,
    solve_cnf,
    write_dimacs,
)


class TestWrite:
    def test_basic_format(self):
        text = dimacs_to_string([[1, -2], [2, 3]], 3)
        lines = text.strip().splitlines()
        assert lines[0] == "p cnf 3 2"
        assert lines[1] == "1 -2 0"
        assert lines[2] == "2 3 0"

    def test_comments(self):
        buf = io.StringIO()
        write_dimacs(buf, [[1]], 1, comments=["hello"])
        assert buf.getvalue().startswith("c hello\n")


class TestRead:
    def test_roundtrip(self):
        clauses = [[1, -2], [2, 3], [-1, -3]]
        text = dimacs_to_string(clauses, 3)
        parsed, nv = read_dimacs(io.StringIO(text))
        assert parsed == clauses
        assert nv == 3

    def test_comments_ignored(self):
        text = "c comment\np cnf 2 1\n1 2 0\n"
        clauses, nv = read_dimacs(io.StringIO(text))
        assert clauses == [[1, 2]]

    def test_multiline_clause(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        clauses, _ = read_dimacs(io.StringIO(text))
        assert clauses == [[1, 2, 3]]

    def test_missing_header_tolerated(self):
        clauses, nv = read_dimacs(io.StringIO("1 -2 0\n2 0\n"))
        assert clauses == [[1, -2], [2]]
        assert nv == 2

    def test_bad_header(self):
        with pytest.raises(SolverError):
            read_dimacs(io.StringIO("p wnf 1 1\n1 0\n"))

    def test_roundtrip_preserves_satisfiability(self):
        clauses = [[1, 2], [-1, 2], [1, -2], [-1, -2]]
        text = dimacs_to_string(clauses, 2)
        parsed, nv = read_dimacs(io.StringIO(text))
        assert solve_cnf(parsed, nv).sat == solve_cnf(clauses, 2).sat
