"""Human-readable rendering of verification results."""

from __future__ import annotations

from typing import List

from repro.analysis.determinism import DeterminismResult
from repro.analysis.idempotence import IdempotenceResult
from repro.core.pipeline import VerificationReport
from repro.smt.model import describe_filesystem


def _declaration_lines(
    resources, declared_at, manifest_name: str
) -> List[str]:
    """``File['/etc/ntp.conf'] declared at ntp.pp:14`` for every
    resource with a known source span."""
    lines: List[str] = []
    if not declared_at:
        return lines
    for res in resources:
        span = declared_at.get(str(res))
        if span and span[0]:
            where = f"{manifest_name}:{span[0]}" if manifest_name else f"line {span[0]}"
            lines.append(f"  {res} declared at {where}")
    return lines


def render_explanation(
    result: DeterminismResult,
    programs,
    declared_at=None,
    manifest_name: str = "",
) -> str:
    """Narrate the two diverging orders step by step on the witness
    machine state (the --explain view)."""
    from repro.fs.trace import explain_order

    if result.deterministic or result.witness_orders is None:
        return "(nothing to explain: the manifest is deterministic)"
    parts = []
    if result.race is not None:
        parts.append(f"Race localized (unsat core): {result.race.describe()}")
        parts.extend(
            _declaration_lines(
                (result.race.resource_a, result.race.resource_b),
                declared_at,
                manifest_name,
            )
        )
        if result.race.ok_divergence:
            parts.append(
                "The orders disagree on whether the run errors at all."
            )
        if result.race.core_paths:
            paths = ", ".join(str(p) for p in result.race.core_paths)
            parts.append(f"Paths the orders cannot agree on: {paths}")
        parts.append("")
    order1, order2 = result.witness_orders
    parts += [
        "--- order (1) ---",
        explain_order(order1, programs, result.witness_fs),
        "--- order (2) ---",
        explain_order(order2, programs, result.witness_fs),
    ]
    return "\n".join(parts)


def render_determinism(
    result: DeterminismResult,
    declared_at=None,
    manifest_name: str = "",
) -> str:
    lines: List[str] = []
    if result.deterministic:
        lines.append("DETERMINISTIC: all orders produce the same outcome.")
        if result.stats.prefilter_proved:
            lines.append(
                "(proved by the lint prefilter: every unordered pair "
                "commutes; no symbolic exploration or SAT)"
            )
    else:
        lines.append("NON-DETERMINISTIC: resource orders diverge.")
        if result.race is not None:
            lines.append(f"Race localized: {result.race.describe()}")
            lines.extend(
                _declaration_lines(
                    (result.race.resource_a, result.race.resource_b),
                    declared_at,
                    manifest_name,
                )
            )
        if result.witness_fs is not None:
            lines.append("Witness initial filesystem:")
            lines.append(_indent(describe_filesystem(result.witness_fs)))
        if result.witness_orders is not None:
            order1, order2 = result.witness_orders
            lines.append("Diverging orders:")
            lines.append(f"  (1) {' -> '.join(map(str, order1))}")
            lines.append(f"  (2) {' -> '.join(map(str, order2))}")
        if result.witness_outcomes is not None:
            out1, out2 = result.witness_outcomes
            lines.append(f"Outcome (1): {_describe_outcome(out1)}")
            lines.append(f"Outcome (2): {_describe_outcome(out2)}")
    stats = result.stats
    lines.append(
        f"[{stats.resources_total} resources, "
        f"{stats.resources_after_elimination} after elimination; "
        f"{stats.paths_before_pruning} stateful paths, "
        f"{stats.paths_after_pruning} after pruning, "
        f"{stats.contended_paths} contended; "
        f"{stats.branches_explored} branches, "
        f"{stats.memo_hits} memo hit"
        + ("" if stats.memo_hits == 1 else "s")
        + f" / {stats.states_merged} states merged, "
        f"{stats.distinct_finals} distinct finals; "
        f"{stats.sat_vars} vars / {stats.sat_clauses} clauses "
        f"in {stats.sat_queries} quer"
        + ("y" if stats.sat_queries == 1 else "ies")
        + f"; {stats.total_seconds:.3f}s]"
    )
    return "\n".join(lines)


#: Functions shown by ``rehearsal verify --profile``.
PROFILE_TOP_N = 15


def render_profile(report: VerificationReport, profiler) -> str:
    """The ``--profile`` view: the determinacy phase split
    (explore / encode / solve) followed by cProfile's top functions by
    cumulative time."""
    import io
    import pstats

    lines: List[str] = []
    if report.determinism is not None:
        stats = report.determinism.stats
        lines.append(
            "determinacy phase split: "
            f"explore {stats.explore_seconds:.3f}s, "
            f"encode {stats.encode_seconds:.3f}s, "
            f"solve {stats.solve_seconds:.3f}s "
            f"({stats.sat_queries} quer"
            + ("y" if stats.sat_queries == 1 else "ies")
            + f", {stats.sat_conflicts} conflicts, "
            f"{stats.sat_decisions} decisions)"
        )
    buffer = io.StringIO()
    ps = pstats.Stats(profiler, stream=buffer)
    ps.strip_dirs().sort_stats("cumulative").print_stats(PROFILE_TOP_N)
    lines.append(buffer.getvalue().rstrip())
    return "\n".join(lines)


def render_idempotence(result: IdempotenceResult) -> str:
    if result.idempotent:
        return "IDEMPOTENT: applying twice equals applying once."
    lines = ["NOT IDEMPOTENT: a second run behaves differently."]
    if result.witness_fs is not None:
        lines.append("Witness initial filesystem:")
        lines.append(_indent(describe_filesystem(result.witness_fs)))
    return "\n".join(lines)


def render_report(report: VerificationReport) -> str:
    lines = [f"== {report.manifest_name} =="]
    if report.error is not None:
        lines.append(f"ERROR: {report.error}")
        return "\n".join(lines)
    lines.append(f"{report.resource_count} primitive resources")
    if report.determinism is not None:
        lines.append(
            render_determinism(
                report.determinism,
                declared_at=report.declared_at,
                manifest_name=report.manifest_name,
            )
        )
    if report.idempotence is not None:
        lines.append(render_idempotence(report.idempotence))
    elif report.deterministic is False:
        lines.append(
            "(idempotence not checked: unsound for non-deterministic "
            "manifests, §5)"
        )
    lines.append(f"total time: {report.total_seconds:.3f}s")
    return "\n".join(lines)


def render_table(header, rows) -> str:
    """Plain-text column-aligned table (shared by the batch summary
    and the benchmark figures)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(
            len(str(header[i])),
            max((len(row[i]) for row in cells), default=0),
        )
        for i in range(len(header))
    ]
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(c.ljust(widths[i]) for i, c in enumerate(row))
        )
    return "\n".join(lines)


def render_batch_report(report) -> str:
    """Text summary table for a :class:`repro.service.BatchReport`."""
    from repro.service.schema import batch_table_rows

    header = [
        "manifest",
        "status",
        "deterministic",
        "idempotent",
        "resources",
        "time",
        "cache",
    ]
    cache_notes = ""
    if report.cache.corrupted:
        cache_notes += (
            f" / {report.cache.corrupted} corrupted entr"
            + ("y" if report.cache.corrupted == 1 else "ies")
            + " recovered"
        )
    if report.cache.read_errors:
        cache_notes += (
            f" / {report.cache.read_errors} lookup(s) failed on "
            "storage errors"
        )
    if report.cache.write_errors:
        cache_notes += (
            f" / {report.cache.write_errors} store(s) not persisted "
            "(cache writes disabled after first failure)"
        )
    summary = (
        f"{len(report.results)} manifests: {report.ok_count} ok, "
        f"{report.failed_count} failed, {report.error_count} errors "
        f"[{report.workers} worker(s), "
        f"cache {report.cache.hits} hit(s) / {report.cache.misses} miss(es)"
        f"{cache_notes}; solver {report.solver_seconds:.3f}s; "
        f"total {report.total_seconds:.3f}s]"
    )
    return "\n".join(
        [render_table(header, batch_table_rows(report)), "", summary]
    )


def _describe_outcome(outcome) -> str:
    from repro.fs.semantics import ERROR

    if outcome is ERROR:
        return "error"
    return f"success; final state:\n{_indent(describe_filesystem(outcome))}"


def _indent(text: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
