"""Lint rule catalogue.  Importing this package registers every rule
and checker with the engine; rule ids are stable and never reused.

==========  =========================  ========  ==========================
id          name                       severity  grounding
==========  =========================  ========  ==========================
REH001      parse-error                error     frontend (§3)
REH002      eval-error                 error     frontend (§3)
REH003      resource-model-error       error     resource models (§4.1)
REH004      duplicate-path-claim       error     Fig. 1 bug class
REH005      definite-race              error     §2/§6 missing-dep bugs
REH006      possible-race              warning   Lemma 4 over-approximation
REH007      dangling-reference         error     catalog well-formedness
REH008      dependency-cycle           error     Fig. 3b failure mode
REH009      missing-parent-dir         note      Fig. 1 footnote auto-require
REH010      protected-write            warning   §9 security auditing
REH011      non-idempotent-resource    warning   §5 idempotence, per-resource
==========  =========================  ========  ==========================
"""

from repro.analysis.lint.rules import (  # noqa: F401
    catalog,
    errors,
    filesystem,
    idempotence,
    races,
)
