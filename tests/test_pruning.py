"""Tests for definitive-write detection and pruning (§4.4, Fig. 10)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_definitive, prune, prune_manifest
from repro.analysis.definitive import A_DIR, A_DNE, AFile, TOP
from repro.fs import (
    ERR,
    ERROR,
    ID,
    FileSystem,
    Path,
    cp,
    creat,
    dir_,
    emptydir_,
    eval_expr,
    file_,
    file_with,
    ite,
    mkdir,
    none_,
    rm,
    seq,
)
from repro.fs.filesystem import DIR, FileContent
from repro.resources import Resource, ResourceCompiler


class TestDefinitiveWrites:
    def test_plain_creat(self):
        prof = analyze_definitive(creat("/f", "x"))
        assert prof[Path.of("/f")].value == AFile("x")

    def test_plain_mkdir(self):
        prof = analyze_definitive(mkdir("/d"))
        assert prof[Path.of("/d")].value == A_DIR

    def test_rm(self):
        prof = analyze_definitive(rm("/f"))
        assert prof[Path.of("/f")].value == A_DNE

    def test_sequencing_last_write_wins(self):
        prof = analyze_definitive(seq(creat("/f", "x"), rm("/f")))
        assert prof[Path.of("/f")].value == A_DNE

    def test_cp_is_indeterminate_with_source_condition(self):
        prof = analyze_definitive(cp("/src", "/dst"))
        wp = prof[Path.of("/dst")]
        assert wp.value is TOP
        assert Path.of("/src") in wp.condition_paths

    def test_divergent_branch_writes_are_top(self):
        e = ite(file_(Path.of("/q")), creat("/f", "a"), creat("/f", "b"))
        prof = analyze_definitive(e)
        assert prof[Path.of("/f")].value is TOP

    def test_agreeing_branch_writes_are_definite(self):
        e = ite(file_(Path.of("/q")), creat("/f", "a"), creat("/f", "a"))
        prof = analyze_definitive(e)
        assert prof[Path.of("/f")].value == AFile("a")

    def test_error_branch_ignored(self):
        e = ite(dir_(Path.of("/q")), creat("/f", "a"), ERR)
        prof = analyze_definitive(e)
        assert prof[Path.of("/f")].value == AFile("a")

    def test_guarded_write_conditionally_definitive(self):
        """The package pattern: write guarded on a marker check."""
        e = ite(file_(Path.of("/marker")), ID, creat("/f", "x"))
        prof = analyze_definitive(e)
        wp = prof[Path.of("/f")]
        assert wp.value == AFile("x")
        assert Path.of("/marker") in wp.condition_paths

    def test_file_resource_is_definitive(self):
        compiler = ResourceCompiler()
        e = compiler.compile(Resource("file", "/f", {"content": "hello"}))
        prof = analyze_definitive(e)
        assert prof[Path.of("/f")].value == AFile("hello")


class TestPrunePartialEval:
    def test_prune_removes_write(self):
        e = creat("/f", "x")
        pruned = prune(Path.of("/f"), e)
        out = eval_expr(pruned, FileSystem.empty())
        assert out is not ERROR
        assert not out.exists(Path.of("/f"))

    def test_prune_preserves_precondition_error(self):
        e = creat("/a/f", "x")  # parent missing: must still error
        pruned = prune(Path.of("/a/f"), e)
        assert eval_expr(pruned, FileSystem.empty()) is ERROR

    def test_paper_mkdir_read_example(self):
        """mkdir(p); if dir?(p) id else err ≡ mkdir(p): naive removal
        would be wrong; the pruner folds the subsequent read."""
        p = Path.of("/d")
        e = seq(mkdir(p), ite(dir_(p), ID, ERR))
        pruned = prune(p, e)
        out = eval_expr(pruned, FileSystem.empty())
        assert out is not ERROR  # the read folded to true

    def test_prune_folds_read_after_rm(self):
        p = Path.of("/f")
        e = seq(rm(p), ite(none_(p), ID, ERR))
        pruned = prune(p, e)
        state = FileSystem.from_dict({"/f": "x"})
        assert eval_expr(pruned, state) is not ERROR

    def test_reads_of_initial_value_kept(self):
        p = Path.of("/f")
        e = seq(ite(file_(p), ID, ERR), creat("/g", "x"))
        pruned = prune(p, e)
        assert pruned is not None
        # No write to p: the read still consults the initial value.
        assert eval_expr(pruned, FileSystem.empty()) is ERROR
        ok = eval_expr(pruned, FileSystem.from_dict({"/f": "x"}))
        assert ok is not ERROR

    def test_double_write_folds_to_error(self):
        p = Path.of("/f")
        e = seq(creat(p, "x"), creat(p, "y"))
        pruned = prune(p, e)
        # Second creat hits an existing file: always an error.
        assert eval_expr(pruned, FileSystem.empty()) is ERROR
        assert eval_expr(e, FileSystem.empty()) is ERROR

    def test_divergent_branches_then_read_bails(self):
        p = Path.of("/f")
        e = seq(
            ite(file_(Path.of("/q")), creat(p, "x"), rm(p)),
            ite(file_(p), ID, ERR),
        )
        assert prune(p, e) is None

    def test_rm_parent_after_removed_write_bails(self):
        """rm of the parent observes the pruned path's existence; once
        a write to the path has been removed that observation can no
        longer be folded."""
        e = seq(creat("/d/f", "x"), rm("/d/f"), rm("/d"))
        assert prune(Path.of("/d/f"), e) is None

    def test_rm_parent_with_initial_knowledge_kept(self):
        pruned = prune(Path.of("/d/f"), rm("/d"))
        assert pruned == rm("/d")

    def test_prune_preservation_on_states(self):
        """Pruning preserves ok-status and non-pruned paths exactly."""
        p = Path.of("/f")
        e = seq(
            creat(p, "x"),
            ite(file_(p), creat("/g", "y"), ID),
            rm(p),
        )
        pruned = prune(p, e)
        for entries in [{}, {"/f": "z"}, {"/f": None}, {"/g": "old"}]:
            fs = FileSystem.from_dict(entries)
            orig = eval_expr(e, fs)
            new = eval_expr(pruned, fs)
            if orig is ERROR:
                assert new is ERROR
            else:
                assert new is not ERROR
                assert orig.lookup(Path.of("/g")) == new.lookup(Path.of("/g"))
                # The pruned path keeps its initial value.
                assert new.lookup(p) == fs.lookup(p)


def _random_expr(rng, depth):
    paths = ["/p", "/p/c", "/q"]
    if depth == 0 or rng.random() < 0.4:
        kind = rng.randrange(5)
        p = rng.choice(paths)
        if kind == 0:
            return mkdir(p)
        if kind == 1:
            return creat(p, rng.choice("xy"))
        if kind == 2:
            return rm(p)
        if kind == 3:
            return ID
        return ite(
            rng.choice(
                [file_(Path.of(p)), dir_(Path.of(p)), none_(Path.of(p))]
            ),
            ID,
            ERR,
        )
    if rng.random() < 0.6:
        return seq(_random_expr(rng, depth - 1), _random_expr(rng, depth - 1))
    p = Path.of(rng.choice(paths))
    return ite(
        rng.choice([file_(p), dir_(p), none_(p), file_with(p, "x")]),
        _random_expr(rng, depth - 1),
        _random_expr(rng, depth - 1),
    )


def _enumerate_states():
    from itertools import product

    paths = [Path.of("/p"), Path.of("/p/c"), Path.of("/q")]
    options = [None, DIR, FileContent("x"), FileContent("y")]
    for combo in product(options, repeat=3):
        entries = {p: c for p, c in zip(paths, combo) if c is not None}
        fs = FileSystem(entries)
        if fs.is_well_formed():
            yield fs


class TestPrunePropertyBased:
    @given(st.integers(min_value=0, max_value=60_000))
    @settings(max_examples=80, deadline=None)
    def test_prune_preserves_ok_and_other_paths(self, seed):
        """For any expression and pruned path: same error behavior and
        identical final state on every non-pruned path (the semantic
        core of Lemma 6)."""
        rng = random.Random(seed)
        e = _random_expr(rng, depth=3)
        target = Path.of(rng.choice(["/p", "/q"]))
        pruned = prune(target, e)
        if pruned is None:
            return  # bail is always allowed
        for fs in _enumerate_states():
            orig = eval_expr(e, fs)
            new = eval_expr(pruned, fs)
            if orig is ERROR:
                assert new is ERROR, f"e={e}\npruned={pruned}\nfs={fs!r}"
                continue
            assert new is not ERROR, f"e={e}\npruned={pruned}\nfs={fs!r}"
            for q in [Path.of("/p"), Path.of("/p/c"), Path.of("/q")]:
                if q == target or target.is_ancestor_of(q):
                    continue
                assert orig.lookup(q) == new.lookup(q), (
                    f"path {q} diverges\ne={e}\npruned={pruned}\nfs={fs!r}"
                )
            assert new.lookup(target) == fs.lookup(target)


class TestPruneManifest:
    def test_private_package_files_pruned(self):
        compiler = ResourceCompiler()
        pkg = compiler.compile(Resource("package", "apache2", {}))
        conf = compiler.compile(
            Resource(
                "file",
                "/etc/apache2/sites-available/000-default.conf",
                {"content": "site"},
            )
        )
        pruned, report = prune_manifest([pkg, conf])
        # Most apache2 files are touched only by the package and must
        # be pruned; the shared config file must survive.
        assert report.stateful_after < report.stateful_before
        assert Path.of(
            "/etc/apache2/sites-available/000-default.conf"
        ) not in report.pruned_paths
        assert Path.of("/usr/sbin/apache2") in report.pruned_paths

    def test_shared_path_not_pruned(self):
        e1 = creat("/f", "x")
        e2 = ite(file_(Path.of("/f")), ID, ERR)
        _, report = prune_manifest([e1, e2])
        assert Path.of("/f") not in report.pruned_paths

    def test_prune_single_resource_whole_file(self):
        e = creat("/f", "x")
        pruned, report = prune_manifest([e])
        assert Path.of("/f") in report.pruned_paths
