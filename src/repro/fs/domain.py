"""Bounding the domain of FS programs — paper Fig. 8.

The logical encoding only tracks a finite set of paths.  For soundness
*and completeness* that set must include, beyond the paths appearing in
the program text:

* the parent of every mentioned path (``mkdir(p/s)`` reads ``p``), and
* one **fresh child** for every path that is removed (``rm``) or tested
  for emptiness (``emptydir?``) — the state of unmentioned children is
  observable through those operations (the paper's
  ``emptydir?(/a) ≢ dir?(/a)`` example), so a witness child must exist
  in the logical domain.

``domain_of`` computes this closed set.  Fresh children use a reserved
component name that cannot appear in user programs.
"""

from __future__ import annotations

from typing import Iterable

from repro.fs import syntax as fx
from repro.fs.paths import Path

FRESH_CHILD = "$fresh"
"""Reserved component for witness children (not valid in manifests)."""


def fresh_child_of(path: Path) -> Path:
    return Path(path.parts + (FRESH_CHILD,))


def is_fresh_witness(path: Path) -> bool:
    return bool(path.parts) and path.parts[-1] == FRESH_CHILD


def pred_domain(pred: fx.Pred) -> set[Path]:
    """dom(a): mentioned paths, plus a fresh child for emptiness tests."""
    out: set[Path] = set()
    stack = [pred]
    while stack:
        cur = stack.pop()
        if isinstance(cur, (fx.IsNone, fx.IsFile, fx.IsDir, fx.IsFileWith)):
            out.add(cur.path)
        elif isinstance(cur, fx.IsEmptyDir):
            out.add(cur.path)
            out.add(fresh_child_of(cur.path))
        elif isinstance(cur, fx.PNot):
            stack.append(cur.inner)
        elif isinstance(cur, (fx.PAnd, fx.POr)):
            stack.append(cur.left)
            stack.append(cur.right)
    return out


def expr_domain(expr: fx.Expr) -> set[Path]:
    """dom(e) per Fig. 8 (with parents of written paths included)."""
    out: set[Path] = set()
    stack = [expr]
    while stack:
        cur = stack.pop()
        if isinstance(cur, (fx.Mkdir, fx.Creat)):
            out.add(cur.path)
            out.add(cur.path.parent())
        elif isinstance(cur, fx.Rm):
            out.add(cur.path)
            out.add(fresh_child_of(cur.path))
        elif isinstance(cur, fx.Cp):
            out.add(cur.src)
            out.add(cur.dst)
            out.add(cur.dst.parent())
        elif isinstance(cur, fx.Seq):
            stack.append(cur.first)
            stack.append(cur.second)
        elif isinstance(cur, fx.If):
            out.update(pred_domain(cur.pred))
            stack.append(cur.then_branch)
            stack.append(cur.else_branch)
    return out


def domain_of(exprs: Iterable[fx.Expr]) -> set[Path]:
    """dom of a whole program (union over resources), root excluded.

    Parents of every domain path are included as well so the encoder can
    express the well-formedness of initial states.
    """
    out: set[Path] = set()
    for e in exprs:
        out.update(expr_domain(e))
    for p in list(out):
        out.update(a for a in p.ancestors() if not a.is_root)
    out.discard(Path.root())
    return out
