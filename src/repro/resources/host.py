"""FS model for the ``host`` resource type: one logical entry per
hostname under ``/etc/hosts.d/`` (the paper's approach of modeling
line-structured config files as disjoint filesystem regions)."""

from __future__ import annotations

from repro.errors import ResourceModelError
from repro.fs import Expr, ID, Path, creat, file_, file_with, ite, rm, seq
from repro.resources.base import Resource, ensure_directory_tree

HOSTS_ROOT = Path.of("/etc/hosts.d")


def entry_path(name: str) -> Path:
    return HOSTS_ROOT.child(name)


def compile_host(resource: Resource, context) -> Expr:
    name = resource.get_str("name") or resource.title
    ensure = (resource.get_str("ensure") or "present").lower()
    path = entry_path(name)
    if ensure == "present":
        ip = resource.require_str("ip")
        content = f"host:{name}:{ip}"
        return seq(
            ensure_directory_tree([path]),
            ite(
                file_with(path, content),
                ID,
                seq(ite(file_(path), rm(path), ID), creat(path, content)),
            ),
        )
    if ensure == "absent":
        return ite(file_(path), rm(path), ID)
    raise ResourceModelError(
        f"{resource.ref}: unsupported ensure => {ensure!r}"
    )
