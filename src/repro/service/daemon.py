"""``rehearsal serve`` — the long-running verification daemon.

The paper's verifier is a batch process; ROADMAP #1 wants the
"millions of users" shape: many tenants submitting catalogs against
one shared cache, with no per-request process startup.  This module is
that shape, on the standard library alone — ``asyncio.start_server``
plus a hand-rolled HTTP/1.1 layer, no web framework, no new runtime
dependency.

Endpoints (see docs/serve.md for the full contract):

* ``POST /v1/verify`` — body ``{"source": ..., "name": ...}`` or
  ``{"path": ...}``; returns the same verdict row as ``rehearsal
  verify-batch --json`` (byte-identical after
  :func:`repro.service.schema.normalized_row`).
* ``GET /v1/verdicts/<digest>`` — look a verdict up by its cache key
  without verifying; served from the tiered cache
  (:class:`repro.service.tiered.TieredVerdictCache` — in-process LRU
  over the on-disk store).
* ``GET /v1/events?since=N&timeout=S`` — long-poll stream of the
  filesystem watcher's re-verification rows.
* ``GET /healthz`` — liveness + basic run info.
* ``GET /metrics`` — Prometheus text format: request counts, cache
  hit tiers, queue depth, the warm re-verify latency histogram.

The watcher is a stat-poll loop (no watchdog dependency): any
``*.pp`` under ``--watch DIR`` whose (mtime, size) changes is
re-verified once it has been *stable* for the debounce interval, so an
editor's rapid successive writes coalesce into one verification.

Per-client token-bucket quotas guard the ``/v1/*`` endpoints: an
exhausted bucket answers ``429`` with a ``Retry-After`` header and is
refilled continuously at ``--quota`` requests/second.

Verification itself runs on a small thread pool (``--workers``)
through one shared :class:`~repro.service.orchestrator.BatchVerifier`
in serial mode, so every request shares the tiered verdict cache and
— with ``--incremental`` — the one incremental-store handle the
daemon pins open for its whole lifetime (the "daemon mode" headroom
named in ROADMAP #4).

Graceful shutdown: SIGTERM/SIGINT stops accepting connections, wakes
every long-poller, drains in-flight verifications to completion (a
response is written whole or not at all — no partial rows), then
exits 0.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import __version__
from repro.analysis.determinism import DeterminismOptions
from repro.service.orchestrator import BatchVerifier
from repro.service.schema import SCHEMA_VERSION
from repro.service.tiered import DEFAULT_CAPACITY, TieredVerdictCache

#: Upper bounds keeping one rogue client from starving the loop.
MAX_REQUEST_BYTES = 4 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024
MAX_EVENT_BUFFER = 1000
MAX_LONGPOLL_SECONDS = 60.0

#: Histogram buckets for the verify-latency histogram (seconds).  The
#: low end is sized to the warm re-verify path (~ms against a hot
#: store), the high end to cold full-corpus manifests.
LATENCY_BUCKETS = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


@dataclass
class DaemonConfig:
    """Everything ``rehearsal serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8421
    #: Verification worker threads: requests beyond this verify queue
    #: behind the pool (visible as ``rehearsal_daemon_queue_depth``).
    workers: int = 1
    #: Directory whose ``*.pp`` files the watcher re-verifies on change.
    watch: Optional[str] = None
    #: Requests/second allowed per client on ``/v1/*`` (None: no quota).
    quota: Optional[float] = None
    #: Bucket capacity (burst size); default: max(1, ceil(quota)).
    quota_burst: Optional[int] = None
    cache_dir: Optional[str] = None
    use_cache: bool = True
    lru_capacity: int = DEFAULT_CAPACITY
    options: DeterminismOptions = field(default_factory=DeterminismOptions)
    platform: str = "ubuntu"
    node_name: str = "default"
    synthesize_packages: bool = True
    package_semantics: str = "direct"
    #: Watcher stat-poll cadence and write-coalescing quiet period.
    poll_interval: float = 0.5
    debounce: float = 0.25
    #: How long shutdown waits for in-flight requests before cancelling.
    drain_seconds: float = 30.0


class TokenBucket:
    """Continuous-refill token bucket, one per client address."""

    def __init__(self, rate: float, burst: int):
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = time.monotonic()

    def admit(self) -> Tuple[bool, float]:
        """(admitted?, seconds until the next token when denied)."""
        now = time.monotonic()
        self.tokens = min(
            self.burst, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class _Histogram:
    """Fixed-bucket Prometheus histogram (cumulative counts)."""

    def __init__(self, buckets=LATENCY_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self.total = 0.0
        self.observations = 0

    def observe(self, seconds: float) -> None:
        self.observations += 1
        self.total += seconds
        for i, bound in enumerate(self.buckets):
            if seconds <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def render(self, name: str) -> List[str]:
        lines = [
            f"# HELP {name} Verification wall-clock per request.",
            f"# TYPE {name} histogram",
        ]
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            lines.append(f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
        cumulative += self.counts[-1]
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {self.total:.6f}")
        lines.append(f"{name}_count {self.observations}")
        return lines


@dataclass
class _Request:
    method: str
    path: str
    query: Dict[str, str]
    body: bytes
    client: str


class _HttpError(Exception):
    def __init__(self, status: int, message: str, headers=None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        #: True once the router has recorded this error in the request
        #: metrics (the outer handler must not count it again).
        self.counted = False


class RehearsalDaemon:
    """The resident verification service.  Create, ``await start()``,
    then ``await run_until_stopped()`` (or use
    :func:`daemon_in_thread` / :func:`run_daemon`)."""

    def __init__(self, config: Optional[DaemonConfig] = None):
        self.config = config or DaemonConfig()
        if self.config.workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {self.config.workers}"
            )
        if self.config.quota is not None and self.config.quota <= 0:
            raise ValueError(
                f"quota must be positive, got {self.config.quota}"
            )
        self.cache: Optional[TieredVerdictCache] = (
            TieredVerdictCache(
                self.config.cache_dir, capacity=self.config.lru_capacity
            )
            if self.config.use_cache
            else None
        )
        self.verifier = BatchVerifier(
            options=self.config.options,
            platform=self.config.platform,
            node_name=self.config.node_name,
            synthesize_packages=self.config.synthesize_packages,
            package_semantics=self.config.package_semantics,
            workers=1,  # serial in-process; concurrency is the thread pool
            cache=self.cache,
        )
        # The "daemon mode" headroom of ROADMAP #4: resolve the
        # incremental-store handle once and hold it for the process
        # lifetime, so every request (and every watcher re-verify)
        # lands on the same hot SQLite connection instead of paying a
        # registry round-trip per call.
        self.incremental_store = None
        if self.config.options.incremental:
            from repro.service.incremental import open_store

            self.incremental_store = open_store(
                getattr(self.config.options, "incremental_dir", None)
            )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="rehearsal-verify",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stopping = False
        self._watch_task: Optional[asyncio.Task] = None
        self._handlers: set = set()
        self._buckets: Dict[str, TokenBucket] = {}
        # -- event stream ----------------------------------------------------
        self._events: List[dict] = []
        self._next_seq = 1
        self._events_dropped = 0
        self._event_cond: Optional[asyncio.Condition] = None
        # -- metrics ---------------------------------------------------------
        self.started_at = time.monotonic()
        self.requests_total: Dict[Tuple[str, int], int] = {}
        self.quota_rejections = 0
        self.watch_reverifies = 0
        self.queue_depth = 0
        self.verify_latency = _Histogram()
        self.port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._event_cond = asyncio.Condition()
        if self.config.watch is not None:
            watch_dir = Path(self.config.watch)
            if not watch_dir.is_dir():
                raise FileNotFoundError(
                    f"no such watch directory: {watch_dir}"
                )
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        if self.config.watch is not None:
            self._watch_task = self._loop.create_task(self._watch_loop())
        self._log(
            f"serving on {self.base_url}"
            + (f", watching {self.config.watch}" if self.config.watch else "")
        )

    def request_stop(self) -> None:
        """Begin a graceful shutdown (call from inside the loop)."""
        if self._stop_event is not None:
            self._stop_event.set()

    def request_stop_threadsafe(self) -> None:
        """Begin a graceful shutdown from any thread (idempotent: a
        no-op once the daemon's loop has already wound down)."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed: the daemon has stopped

    async def run_until_stopped(self) -> None:
        assert self._stop_event is not None, "start() first"
        await self._stop_event.wait()
        await self._shutdown()

    async def _shutdown(self) -> None:
        self._stopping = True
        self._log("shutting down: draining in-flight requests")
        # Stop accepting; wake every long-poller (they observe
        # _stopping and return their current cursor immediately).
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._event_cond is not None:
            async with self._event_cond:
                self._event_cond.notify_all()
        if self._watch_task is not None:
            self._watch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._watch_task
        # In-flight verifications finish and their responses are
        # written whole — the no-partial-rows half of the shutdown
        # contract.  Only a drain-timeout cancels.
        pending = [t for t in self._handlers if not t.done()]
        if pending:
            done, still = await asyncio.wait(
                pending, timeout=self.config.drain_seconds
            )
            for task in still:
                task.cancel()
            if still:
                await asyncio.wait(still, timeout=1.0)
        self._executor.shutdown(wait=True)
        self._log("shutdown complete")

    def _log(self, message: str) -> None:
        sys.stderr.write(f"rehearsal-serve: {message}\n")
        sys.stderr.flush()

    # -- HTTP layer --------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            try:
                request = await self._read_request(reader, writer)
                if request is None:
                    return
                status, payload, content_type, headers = await self._route(
                    request
                )
            except _HttpError as exc:
                status = exc.status
                payload = json.dumps({"error": exc.message}).encode("utf8")
                content_type = "application/json"
                headers = exc.headers
                if not exc.counted:
                    self._count_request("bad-request", status)
            await self._write_response(
                writer, status, payload, content_type, headers
            )
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # pragma: no cover - last-resort guard
            with contextlib.suppress(Exception):
                await self._write_response(
                    writer,
                    500,
                    json.dumps(
                        {"error": f"internal error: {type(exc).__name__}"}
                    ).encode("utf8"),
                    "application/json",
                    {},
                )
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[_Request]:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            return None
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "request head too large")
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(413, "request head too large")
        try:
            text = head.decode("latin-1")
            request_line, *header_lines = text.split("\r\n")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line")
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        length_header = headers.get("content-length")
        if length_header is not None:
            try:
                length = int(length_header)
            except ValueError:
                raise _HttpError(400, "bad Content-Length")
            if length < 0:
                raise _HttpError(400, "bad Content-Length")
            if length > MAX_REQUEST_BYTES:
                raise _HttpError(413, "request body too large")
            if length:
                try:
                    body = await asyncio.wait_for(
                        reader.readexactly(length), timeout=30.0
                    )
                except (asyncio.IncompleteReadError, asyncio.TimeoutError):
                    return None
        path, _, query_string = target.partition("?")
        query = {}
        for pair in query_string.split("&"):
            if not pair:
                continue
            key, _, value = pair.partition("=")
            query[key] = value
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) and peer else "local"
        return _Request(
            method=method, path=path, query=query, body=body, client=client
        )

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
        headers: Dict[str, str],
    ) -> None:
        reason = _REASONS.get(status, "OK")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        # One write + drain: the response hits the socket whole, so a
        # reader can never observe a partial verdict row.
        writer.write(head + payload)
        await writer.drain()

    # -- routing -----------------------------------------------------------

    def _count_request(self, endpoint: str, status: int) -> None:
        key = (endpoint, status)
        self.requests_total[key] = self.requests_total.get(key, 0) + 1

    def _check_quota(self, request: _Request) -> None:
        if self.config.quota is None:
            return
        bucket = self._buckets.get(request.client)
        if bucket is None:
            burst = self.config.quota_burst or max(
                1, math.ceil(self.config.quota)
            )
            bucket = TokenBucket(self.config.quota, burst)
            self._buckets[request.client] = bucket
        admitted, wait = bucket.admit()
        if not admitted:
            self.quota_rejections += 1
            raise _HttpError(
                429,
                f"quota exhausted for {request.client}: "
                f"{self.config.quota:g} request(s)/s",
                headers={"Retry-After": str(max(1, math.ceil(wait)))},
            )

    async def _route(
        self, request: _Request
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        path, method = request.path, request.method
        if path == "/healthz":
            endpoint, handler = "healthz", self._handle_healthz
        elif path == "/metrics":
            endpoint, handler = "metrics", self._handle_metrics
        elif path == "/v1/verify":
            endpoint, handler = "verify", self._handle_verify
        elif path.startswith("/v1/verdicts/"):
            endpoint, handler = "verdicts", self._handle_verdict
        elif path == "/v1/events":
            endpoint, handler = "events", self._handle_events
        else:
            self._count_request("other", 404)
            error = _HttpError(404, f"no such endpoint: {path}")
            error.counted = True
            raise error

        expected = "POST" if endpoint == "verify" else "GET"
        if method != expected:
            self._count_request(endpoint, 405)
            error = _HttpError(
                405,
                f"{endpoint} expects {expected}, got {method}",
                headers={"Allow": expected},
            )
            error.counted = True
            raise error
        try:
            if path.startswith("/v1/"):
                self._check_quota(request)
            status, payload, content_type = await handler(request)
        except _HttpError as exc:
            self._count_request(endpoint, exc.status)
            exc.counted = True
            raise
        self._count_request(endpoint, status)
        return status, payload, content_type, {}

    @staticmethod
    def _json(status: int, obj: dict) -> Tuple[int, bytes, str]:
        return (
            status,
            (json.dumps(obj, indent=2) + "\n").encode("utf8"),
            "application/json",
        )

    # -- endpoint handlers -------------------------------------------------

    async def _handle_healthz(self, request: _Request):
        return self._json(
            200,
            {
                "status": "ok",
                "version": __version__,
                "schema_version": SCHEMA_VERSION,
                "uptime_seconds": round(
                    time.monotonic() - self.started_at, 3
                ),
                "watch": self.config.watch,
                "workers": self.config.workers,
                "queue_depth": self.queue_depth,
                "incremental_store": self.incremental_store is not None,
            },
        )

    async def _handle_verify(self, request: _Request):
        try:
            body = json.loads(request.body.decode("utf8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}")
        if not isinstance(body, dict):
            raise _HttpError(400, "request body must be a JSON object")
        source = body.get("source")
        manifest_path = body.get("path")
        if (source is None) == (manifest_path is None):
            raise _HttpError(
                400, "provide exactly one of 'source' or 'path'"
            )
        if manifest_path is not None:
            if not isinstance(manifest_path, str):
                raise _HttpError(400, "'path' must be a string")
            try:
                source = Path(manifest_path).read_text(encoding="utf8")
            except (OSError, UnicodeDecodeError) as exc:
                raise _HttpError(
                    400, f"cannot read manifest {manifest_path}: {exc}"
                )
        if not isinstance(source, str):
            raise _HttpError(400, "'source' must be a string")
        name = body.get("name") or manifest_path or "<request>"
        if not isinstance(name, str):
            raise _HttpError(400, "'name' must be a string")
        row = await self._verify_async(name, source)
        return self._json(
            200,
            {
                "schema_version": SCHEMA_VERSION,
                "version": __version__,
                "row": row,
            },
        )

    async def _handle_verdict(self, request: _Request):
        digest = request.path[len("/v1/verdicts/") :]
        if self.cache is None:
            raise _HttpError(404, "the daemon runs with caching disabled")
        if not digest or "/" in digest:
            raise _HttpError(400, "expected /v1/verdicts/<cache-key>")
        result = await asyncio.get_running_loop().run_in_executor(
            self._executor, self.cache.get, digest
        )
        if result is None:
            raise _HttpError(404, f"no verdict under digest {digest}")
        return self._json(
            200,
            {
                "schema_version": SCHEMA_VERSION,
                "version": __version__,
                "row": result.to_dict(),
            },
        )

    async def _handle_events(self, request: _Request):
        try:
            since = int(request.query.get("since", "0"))
        except ValueError:
            raise _HttpError(400, "'since' must be an integer")
        try:
            timeout = float(request.query.get("timeout", "0"))
        except ValueError:
            raise _HttpError(400, "'timeout' must be a number")
        timeout = max(0.0, min(timeout, MAX_LONGPOLL_SECONDS))
        deadline = time.monotonic() + timeout
        assert self._event_cond is not None
        async with self._event_cond:
            while (
                not self._stopping
                and not self._events_after(since)
                and time.monotonic() < deadline
            ):
                remaining = deadline - time.monotonic()
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._event_cond.wait(), timeout=remaining
                    )
            events = self._events_after(since)
        return self._json(
            200,
            {
                "events": events,
                "next": events[-1]["seq"] if events else max(
                    since, self._next_seq - 1
                ),
                "dropped": self._events_dropped,
                "stopping": self._stopping,
            },
        )

    def _events_after(self, since: int) -> List[dict]:
        return [e for e in self._events if e["seq"] > since]

    async def _handle_metrics(self, request: _Request):
        lines = [
            "# HELP rehearsal_daemon_uptime_seconds Seconds since start.",
            "# TYPE rehearsal_daemon_uptime_seconds gauge",
            f"rehearsal_daemon_uptime_seconds "
            f"{time.monotonic() - self.started_at:.3f}",
            "# HELP rehearsal_daemon_requests_total Requests by endpoint "
            "and status.",
            "# TYPE rehearsal_daemon_requests_total counter",
        ]
        for (endpoint, status), count in sorted(self.requests_total.items()):
            lines.append(
                f'rehearsal_daemon_requests_total{{endpoint="{endpoint}",'
                f'status="{status}"}} {count}'
            )
        lines += [
            "# HELP rehearsal_daemon_cache_lookups_total Verdict-cache "
            "lookups by tier.",
            "# TYPE rehearsal_daemon_cache_lookups_total counter",
        ]
        tiers = (
            self.cache.tier_stats()
            if self.cache is not None
            else {"memory_hits": 0, "disk_hits": 0, "misses": 0}
        )
        for tier in ("memory_hits", "disk_hits", "misses"):
            label = tier.replace("_hits", "").replace("misses", "miss")
            lines.append(
                f'rehearsal_daemon_cache_lookups_total{{tier="{label}"}} '
                f"{tiers[tier]}"
            )
        lines += [
            "# HELP rehearsal_daemon_queue_depth Verify requests queued "
            "or running.",
            "# TYPE rehearsal_daemon_queue_depth gauge",
            f"rehearsal_daemon_queue_depth {self.queue_depth}",
            "# HELP rehearsal_daemon_quota_rejections_total Requests "
            "answered 429.",
            "# TYPE rehearsal_daemon_quota_rejections_total counter",
            f"rehearsal_daemon_quota_rejections_total "
            f"{self.quota_rejections}",
            "# HELP rehearsal_daemon_watch_reverifies_total Watcher "
            "re-verifications.",
            "# TYPE rehearsal_daemon_watch_reverifies_total counter",
            f"rehearsal_daemon_watch_reverifies_total "
            f"{self.watch_reverifies}",
            "# HELP rehearsal_daemon_incremental_store_open Whether the "
            "persistent incremental store is pinned open.",
            "# TYPE rehearsal_daemon_incremental_store_open gauge",
            f"rehearsal_daemon_incremental_store_open "
            f"{int(self.incremental_store is not None)}",
        ]
        lines += self.verify_latency.render("rehearsal_daemon_verify_seconds")
        payload = ("\n".join(lines) + "\n").encode("utf8")
        return 200, payload, "text/plain; version=0.0.4; charset=utf-8"

    # -- verification ------------------------------------------------------

    def _verify_sync(self, name: str, source: str) -> dict:
        report = self.verifier.verify_sources([(name, source)])
        return report.results[0].to_dict()

    async def _verify_async(self, name: str, source: str) -> dict:
        self.queue_depth += 1
        start = time.perf_counter()
        try:
            row = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._verify_sync, name, source
            )
        finally:
            self.queue_depth -= 1
        self.verify_latency.observe(time.perf_counter() - start)
        return row

    # -- filesystem watcher ------------------------------------------------

    def _scan_watch_dir(self) -> Dict[str, Tuple[int, int]]:
        signatures = {}
        watch_dir = Path(self.config.watch)  # type: ignore[arg-type]
        try:
            candidates = sorted(watch_dir.rglob("*.pp"))
        except OSError:
            return signatures
        for path in candidates:
            try:
                stat = path.stat()
            except OSError:
                continue  # deleted between glob and stat
            signatures[str(path)] = (stat.st_mtime_ns, stat.st_size)
        return signatures

    async def _watch_loop(self) -> None:
        """Stat-poll ``--watch``: re-verify any ``*.pp`` whose (mtime,
        size) changed, once it has been stable for the debounce
        interval — rapid successive writes coalesce into one run."""
        snapshot = self._scan_watch_dir()  # pre-existing files are baseline
        pending: Dict[str, float] = {}
        while True:
            await asyncio.sleep(self.config.poll_interval)
            now = time.monotonic()
            current = self._scan_watch_dir()
            for path, signature in current.items():
                if snapshot.get(path) != signature:
                    snapshot[path] = signature
                    pending[path] = now  # (re)start the quiet period
            for path in list(pending):
                if path not in current:
                    pending.pop(path)  # deleted while pending
            for path in [p for p in snapshot if p not in current]:
                snapshot.pop(path)
            due = [
                path
                for path, changed_at in pending.items()
                if now - changed_at >= self.config.debounce
            ]
            for path in sorted(due):
                pending.pop(path)
                await self._reverify_watched(path)

    async def _reverify_watched(self, path: str) -> None:
        try:
            source = Path(path).read_text(encoding="utf8")
        except (OSError, UnicodeDecodeError) as exc:
            self._log(f"watcher: cannot read {path}: {exc}")
            return
        try:
            row = await self._verify_async(path, source)
        except Exception as exc:
            self._log(f"watcher: verification of {path} crashed: {exc}")
            return
        self.watch_reverifies += 1
        self._log(
            f"watcher: re-verified {path}: {row['status']}"
        )
        await self._emit_event(
            {"kind": "manifest-verified", "path": path, "row": row}
        )

    async def _emit_event(self, event: dict) -> None:
        assert self._event_cond is not None
        async with self._event_cond:
            event = dict(event)
            event["seq"] = self._next_seq
            self._next_seq += 1
            self._events.append(event)
            if len(self._events) > MAX_EVENT_BUFFER:
                dropped = len(self._events) - MAX_EVENT_BUFFER
                del self._events[:dropped]
                self._events_dropped += dropped
            self._event_cond.notify_all()


# -- entry points -----------------------------------------------------------


def run_daemon(config: DaemonConfig) -> int:
    """Blocking runner for the CLI: serve until SIGTERM/SIGINT, then
    drain and exit 0 (2 when the service cannot start)."""
    import signal

    daemon = RehearsalDaemon(config)

    async def _main() -> int:
        try:
            await daemon.start()
        except OSError as exc:
            print(f"error: cannot start daemon: {exc}", file=sys.stderr)
            return 2
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, daemon.request_stop)
        await daemon.run_until_stopped()
        return 0

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:  # platforms without add_signal_handler
        return 0


@contextlib.contextmanager
def daemon_in_thread(config: Optional[DaemonConfig] = None):
    """Run a daemon on a background thread; yield the (started)
    :class:`RehearsalDaemon`.  The tests, the benchmark harness, and
    ``examples/serve_client.py``'s self-hosted mode all use this."""
    daemon = RehearsalDaemon(config)
    started = threading.Event()
    startup_failure: List[BaseException] = []

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(daemon.start())
        except BaseException as exc:  # surfaced to the caller below
            startup_failure.append(exc)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_until_complete(daemon.run_until_stopped())
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=runner, name="rehearsal-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("daemon failed to start within 30s")
    if startup_failure:
        raise startup_failure[0]
    try:
        yield daemon
    finally:
        daemon.request_stop_threadsafe()
        thread.join(timeout=60.0)
