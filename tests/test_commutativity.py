"""Tests for the commutativity footprint analysis (§4.3, Fig. 9)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import exprs_commute, footprint
from repro.analysis.commutativity import Access
from repro.fs import (
    ERR,
    ID,
    FileSystem,
    Path,
    cp,
    creat,
    dir_,
    emptydir_,
    eval_expr,
    file_,
    ite,
    mkdir,
    none_,
    pnot,
    rm,
    seq,
)
from repro.fs.filesystem import DIR, FileContent
from repro.resources import Resource, ResourceCompiler, guarded_mkdir


class TestFootprint:
    def test_creat_reads_parent_writes_target(self):
        fp = footprint(creat("/a/f", "x"))
        assert Path.of("/a/f") in fp.writes
        assert Path.of("/a") in fp.reads

    def test_guarded_mkdir_is_dir_ensure(self):
        fp = footprint(guarded_mkdir(Path.of("/usr")))
        assert Path.of("/usr") in fp.dir_ensures
        assert not fp.writes

    def test_guarded_mkdir_chain_tree_order(self):
        e = seq(
            guarded_mkdir(Path.of("/usr")),
            guarded_mkdir(Path.of("/usr/bin")),
        )
        fp = footprint(e)
        assert fp.dir_ensures == {Path.of("/usr"), Path.of("/usr/bin")}

    def test_guarded_mkdir_out_of_order_is_write(self):
        """Creating /a/b before /a is not the D idiom (paper §4.3):
        both paths degrade to plain writes (the early fallback also
        reads /a externally, so its later guarded mkdir cannot be D)."""
        e = seq(
            guarded_mkdir(Path.of("/a/b")),
            guarded_mkdir(Path.of("/a")),
        )
        fp = footprint(e)
        assert Path.of("/a/b") in fp.writes
        assert Path.of("/a") in fp.writes

    def test_unguarded_mkdir_is_write(self):
        fp = footprint(mkdir("/usr"))
        assert Path.of("/usr") in fp.writes

    def test_rm_records_children_read(self):
        fp = footprint(rm("/d"))
        assert Path.of("/d") in fp.writes
        assert Path.of("/d") in fp.children_reads

    def test_emptydir_pred_records_children_read(self):
        fp = footprint(ite(emptydir_(Path.of("/d")), ID, ERR))
        assert Path.of("/d") in fp.children_reads

    def test_write_then_guard_stays_write(self):
        e = seq(mkdir("/a"), guarded_mkdir(Path.of("/a")))
        fp = footprint(e)
        assert Path.of("/a") in fp.writes
        assert Path.of("/a") not in fp.dir_ensures

    def test_branch_join(self):
        e = ite(file_(Path.of("/q")), creat("/a", "x"), ID)
        fp = footprint(e)
        assert Path.of("/q") in fp.reads
        assert Path.of("/a") in fp.writes


class TestCommute:
    def test_disjoint_writes_commute(self):
        assert exprs_commute(creat("/a", "x"), creat("/b", "y"))

    def test_same_write_conflicts(self):
        assert not exprs_commute(creat("/a", "x"), creat("/a", "y"))

    def test_read_write_conflicts(self):
        e1 = ite(file_(Path.of("/a")), ID, ERR)
        e2 = creat("/a", "x")
        assert not exprs_commute(e1, e2)

    def test_read_read_commutes(self):
        e1 = ite(file_(Path.of("/a")), ID, ERR)
        e2 = ite(none_(Path.of("/a")), ID, ERR)
        assert exprs_commute(e1, e2)

    def test_shared_directory_creation_commutes(self):
        """The central §4.3 observation: packages sharing /usr-style
        trees must be provably commuting."""
        pkg1 = seq(
            guarded_mkdir(Path.of("/usr")),
            guarded_mkdir(Path.of("/usr/bin")),
            creat("/usr/bin/gcc", "gcc"),
        )
        pkg2 = seq(
            guarded_mkdir(Path.of("/usr")),
            guarded_mkdir(Path.of("/usr/bin")),
            creat("/usr/bin/ocaml", "ocaml"),
        )
        assert exprs_commute(pkg1, pkg2)

    def test_dir_ensure_vs_plain_write_conflicts(self):
        e1 = guarded_mkdir(Path.of("/a"))
        e2 = mkdir("/a")
        assert not exprs_commute(e1, e2)

    def test_rm_vs_descendant_write_conflicts(self):
        e1 = rm("/d")
        e2 = creat("/d/f", "x")
        assert not exprs_commute(e1, e2)

    def test_compiled_packages_commute(self):
        compiler = ResourceCompiler()
        p1 = compiler.compile(Resource("package", "gcc", {}))
        p2 = compiler.compile(Resource("package", "ocaml", {}))
        assert exprs_commute(p1, p2)

    def test_package_vs_its_config_file_conflicts(self):
        compiler = ResourceCompiler()
        pkg = compiler.compile(Resource("package", "apache2", {}))
        conf = compiler.compile(
            Resource(
                "file",
                "/etc/apache2/sites-available/000-default.conf",
                {"content": "site config"},
            )
        )
        assert not exprs_commute(pkg, conf)


def _random_atomic(rng, paths):
    kind = rng.choice(["mkdir", "creat", "rm", "guard", "check"])
    p = Path.of(rng.choice(paths))
    if kind == "mkdir":
        return mkdir(p)
    if kind == "creat":
        return creat(p, rng.choice("xy"))
    if kind == "rm":
        return rm(p)
    if kind == "guard":
        return guarded_mkdir(p)
    return ite(
        rng.choice([file_(p), dir_(p), none_(p)]),
        ID,
        ERR,
    )


def _random_expr(rng, paths, size):
    parts = [_random_atomic(rng, paths) for _ in range(size)]
    return seq(*parts)


def _enumerate_states(paths, contents=("x", "y")):
    from itertools import product

    paths = sorted(Path.of(p) for p in paths)
    options = [None, DIR] + [FileContent(c) for c in contents]
    for combo in product(options, repeat=len(paths)):
        entries = {p: c for p, c in zip(paths, combo) if c is not None}
        fs = FileSystem(entries)
        if fs.is_well_formed():
            yield fs


class TestLemma4Soundness:
    """If the footprint check says two expressions commute, they must
    commute semantically — validated exhaustively on small states."""

    PATHS = ["/a", "/a/b", "/c"]

    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=100, deadline=None)
    def test_syntactic_commute_implies_semantic(self, seed):
        rng = random.Random(seed)
        e1 = _random_expr(rng, self.PATHS, rng.randint(1, 3))
        e2 = _random_expr(rng, self.PATHS, rng.randint(1, 3))
        if not exprs_commute(e1, e2):
            return  # the check is allowed to be conservative
        for fs in _enumerate_states(self.PATHS):
            left = eval_expr(seq(e1, e2), fs)
            right = eval_expr(seq(e2, e1), fs)
            assert left == right, (
                f"claimed commuting but diverge on {fs!r}:\n"
                f"e1={e1}\ne2={e2}"
            )
