import re
from pathlib import Path

from setuptools import find_packages, setup


def read_version() -> str:
    """Single source of truth: repro.__version__ (the verdict cache
    keys on it, so packaging metadata must agree)."""
    init = Path(__file__).parent / "src" / "repro" / "__init__.py"
    match = re.search(
        r'^__version__ = "([^"]+)"', init.read_text(encoding="utf8"), re.M
    )
    if not match:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-rehearsal",
    version=read_version(),
    description=(
        "Reproduction of Rehearsal: a configuration verification tool "
        "for Puppet (PLDI 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # The benchmark corpus ships as data files next to repro.corpus;
    # without this the manifests silently vanish from wheels/sdists and
    # load_source() fails on every installed copy.
    package_data={"repro.corpus": ["manifests/*.pp"]},
    include_package_data=True,
    # importlib.resources.files() (repro.corpus) needs 3.9+.
    python_requires=">=3.9",
    install_requires=["networkx"],
    entry_points={
        "console_scripts": [
            "rehearsal = repro.core.cli:main",
        ],
    },
)
