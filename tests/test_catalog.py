"""Tests for catalog internals: containment, reference expansion,
nested defines, and graph construction edge cases."""

import networkx as nx
import pytest

from repro.errors import PuppetEvalError
from repro.puppet import evaluate_manifest
from repro.puppet.values import RefValue


class TestContainment:
    def test_nested_define_membership_is_transitive(self):
        catalog = evaluate_manifest(
            """
            define inner() {
              file{"/srv/${title}": content => 'x' }
            }
            define outer() {
              inner{"${title}-core": }
              package{"${title}-pkg": }
            }
            outer{'app': }
            """
        )
        members = catalog.expand_ref(RefValue("outer", "app"))
        names = sorted(str(m.ref) for m in members)
        assert names == ["File['/srv/app-core']", "Package['app-pkg']"]

    def test_dependency_through_nested_define(self):
        catalog = evaluate_manifest(
            """
            define inner() { file{"/srv/${title}": content => 'x' } }
            define outer() { inner{"${title}-core": } }
            outer{'app': }
            package{'base': }
            Package['base'] -> Outer['app']
            """
        )
        graph = catalog.build_graph()
        assert graph.has_edge("Package['base']", "File['/srv/app-core']")

    def test_class_inside_class_membership(self):
        catalog = evaluate_manifest(
            """
            class inner { package{'deep': } }
            class outer { include inner package{'shallow': } }
            include outer
            """
        )
        members = catalog.expand_ref(RefValue("class", "outer"))
        names = {str(m.ref) for m in members}
        # The included class itself is contained where declared.
        assert "Package['shallow']" in names
        assert "Package['deep']" in names

    def test_define_instance_not_a_graph_node(self):
        catalog = evaluate_manifest(
            """
            define wrapper() { package{"${title}-p": } }
            wrapper{'x': }
            """
        )
        graph = catalog.build_graph()
        assert "Wrapper['x']" not in graph.nodes
        assert "Package['x-p']" in graph.nodes


class TestReferenceExpansion:
    def test_primitive_ref_is_itself(self):
        catalog = evaluate_manifest("package{'p': }")
        members = catalog.expand_ref(RefValue("package", "p"))
        assert [str(m.ref) for m in members] == ["Package['p']"]

    def test_undeclared_ref_raises(self):
        catalog = evaluate_manifest("package{'p': }")
        with pytest.raises(PuppetEvalError, match="undeclared"):
            catalog.expand_ref(RefValue("package", "ghost"))

    def test_stage_ref_collects_class_members(self):
        catalog = evaluate_manifest(
            """
            stage{'pre': before => Stage['main'] }
            class early { package{'keyring': } }
            class { 'early': stage => 'pre' }
            class normal { package{'app': } }
            include normal
            """
        )
        pre = catalog.expand_ref(RefValue("stage", "pre"))
        main = catalog.expand_ref(RefValue("stage", "main"))
        assert [str(m.ref) for m in pre] == ["Package['keyring']"]
        assert [str(m.ref) for m in main] == ["Package['app']"]

    def test_empty_stage_expands_empty(self):
        catalog = evaluate_manifest(
            "stage{'pre': before => Stage['main'] } package{'p': }"
        )
        # p belongs to no class, hence to no stage.
        assert catalog.expand_ref(RefValue("stage", "pre")) == []


class TestGraphConstruction:
    def test_self_edge_ignored(self):
        catalog = evaluate_manifest(
            """
            class app { package{'p': } }
            include app
            Class['app'] -> Class['app']
            """
        )
        graph = catalog.build_graph()
        assert not list(nx.selfloop_edges(graph))

    def test_virtual_excluded_from_container_expansion(self):
        catalog = evaluate_manifest(
            """
            class app {
              @user{'ghost': }
              package{'real': }
            }
            include app
            package{'other': }
            Class['app'] -> Package['other']
            """
        )
        graph = catalog.build_graph()
        assert graph.has_edge("Package['real']", "Package['other']")
        assert "User['ghost']" not in graph.nodes

    def test_edge_between_members_of_same_container_kept(self):
        catalog = evaluate_manifest(
            """
            class app {
              package{'a': }
              package{'b': require => Package['a'] }
            }
            include app
            """
        )
        graph = catalog.build_graph()
        assert graph.has_edge("Package['a']", "Package['b']")

    def test_cycle_error_lists_nodes(self):
        from repro.errors import DependencyCycleError

        catalog = evaluate_manifest(
            """
            package{'a': } package{'b': }
            Package['a'] -> Package['b']
            Package['b'] -> Package['a']
            """
        )
        with pytest.raises(DependencyCycleError) as exc:
            catalog.build_graph()
        assert len(exc.value.cycle) >= 2

    def test_graph_nodes_carry_entries(self):
        catalog = evaluate_manifest("package{'p': ensure => present }")
        graph = catalog.build_graph()
        entry = graph.nodes["Package['p']"]["entry"]
        assert entry.resource.get_str("ensure") == "present"
