# dnsmasq — fixed variant: the drop-in fragment requires the package
# that provides /etc/dnsmasq.d/, restoring the provider-before-consumer
# order on every run.

class dnsmasq {
  $domain     = 'example.lan'
  $dhcp_start = '192.168.1.50'
  $dhcp_end   = '192.168.1.150'

  package { 'dnsmasq':
    ensure => installed,
  }

  # FIX: the package provides the conf.d directory.
  file { '/etc/dnsmasq.d/local.conf':
    ensure  => file,
    content => "domain=${domain}\nexpand-hosts\ndhcp-range=${dhcp_start},${dhcp_end},12h\n",
    require => Package['dnsmasq'],
  }

  service { 'dnsmasq':
    ensure    => running,
    enable    => true,
    subscribe => File['/etc/dnsmasq.d/local.conf'],
  }
}

include dnsmasq
