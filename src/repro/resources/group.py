"""FS model for the ``group`` resource type: a record file under
``/etc/groups`` with unique content, mirroring the user model."""

from __future__ import annotations

from repro.errors import ResourceModelError
from repro.fs import Expr, ID, Path, creat, file_, ite, rm, seq
from repro.resources.base import Resource, ensure_directory_tree

GROUPS_ROOT = Path.of("/etc/groups")


def group_path(name: str) -> Path:
    return GROUPS_ROOT.child(name)


def compile_group(resource: Resource, context) -> Expr:
    name = resource.get_str("name") or resource.title
    ensure = (resource.get_str("ensure") or "present").lower()
    record = group_path(name)
    if ensure == "present":
        return ite(
            file_(record),
            ID,
            seq(
                ensure_directory_tree([record]),
                creat(record, f"group:{name}"),
            ),
        )
    if ensure == "absent":
        return ite(file_(record), rm(record), ID)
    raise ResourceModelError(
        f"{resource.ref}: unsupported ensure => {ensure!r}"
    )
