"""Validation of the Fig. 7 encoding against the reference evaluator.

The central property: for every FS expression e and concrete initial
filesystem σ over the program domain, evaluating the symbolic state
under σ's assignment agrees with the reference interpreter — both on
the ok bit and on every path's final value.
"""

import random
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs import (
    ERR,
    ERROR,
    ID,
    FileSystem,
    Path,
    cp,
    creat,
    dir_,
    emptydir_,
    eval_expr,
    file_,
    file_with,
    ite,
    mkdir,
    none_,
    pand,
    pnot,
    por,
    rm,
    seq,
)
from repro.fs.filesystem import DIR, FileContent
from repro.logic import TermBank
from repro.smt import (
    PathDomains,
    apply_expr,
    assignment_for_fs,
    initial_state,
    states_differ,
    initial_constraints,
    check_sat,
    decode_filesystem,
)
from repro.smt.values import value_of_content


def _symbolic_agrees_with_concrete(expr, fs):
    """Check encoder vs interpreter on one expression and state."""
    bank = TermBank()
    domains = PathDomains.for_exprs([expr])
    sym = apply_expr(bank, initial_state(bank, domains), expr)
    assignment = assignment_for_fs(domains, fs)
    concrete = eval_expr(expr, fs)
    ok = bank.evaluate(sym.ok, assignment)
    if concrete is ERROR:
        assert not ok, f"encoder says ok, interpreter errors: {expr}"
        return
    assert ok, f"encoder says error, interpreter succeeds: {expr}"
    for path in domains.paths:
        expected = value_of_content(concrete.lookup(path))
        sv = sym.value(path)
        for value, term in sv.indicators.items():
            holds = bank.evaluate(term, assignment)
            if value == expected:
                assert holds, f"{path} should be {expected} after {expr}"
            else:
                assert not holds, f"{path} cannot be {value} after {expr}"


def _enumerate_filesystems(domains, paths):
    """All well-formed filesystems over the given paths, with each
    path's content drawn from its finite domain (one literal plus one
    generic to keep the product tractable)."""
    paths = sorted(paths)
    per_path_options = []
    for p in paths:
        contents = sorted(domains.contents(p))
        literals = [c for c in contents if not c.startswith("ω")][:1]
        generics = [c for c in contents if c.startswith("ω")][:1]
        options = [None, DIR] + [
            FileContent(c) for c in literals + generics
        ]
        per_path_options.append(options)
    for combo in product(*per_path_options):
        entries = {
            p: c for p, c in zip(paths, combo) if c is not None
        }
        fs = FileSystem(entries)
        if fs.is_well_formed():
            yield fs


CORE_EXPRS = [
    ID,
    ERR,
    mkdir("/a"),
    mkdir("/a/b"),
    creat("/f", "x"),
    creat("/a/f", "x"),
    rm("/a"),
    rm("/f"),
    cp("/f", "/g"),
    cp("/f", "/a/g"),
    seq(mkdir("/a"), mkdir("/a/b")),
    seq(mkdir("/a"), creat("/a/f", "x"), rm("/a/f"), rm("/a")),
    ite(none_(Path.of("/a")), mkdir("/a")),
    ite(dir_(Path.of("/a")), ID, ERR),
    ite(emptydir_(Path.of("/a")), ID, ERR),
    ite(file_(Path.of("/f")), rm("/f"), creat("/f", "y")),
    ite(file_with(Path.of("/f"), "x"), ID, ERR),
    ite(
        por(file_(Path.of("/f")), dir_(Path.of("/a"))),
        ERR,
        creat("/f", "z"),
    ),
    ite(
        pand(dir_(Path.of("/a")), pnot(file_(Path.of("/a/f")))),
        creat("/a/f", "w"),
        ID,
    ),
    seq(cp("/src", "/dst"), rm("/src")),
]


class TestEncoderAgainstInterpreter:
    @pytest.mark.parametrize("expr", CORE_EXPRS, ids=lambda e: repr(e)[:60])
    def test_exhaustive_small_states(self, expr):
        domains = PathDomains.for_exprs([expr])
        # Cap enumeration: use at most 4 paths.
        paths = domains.paths[:4]
        for fs in _enumerate_filesystems(domains, paths):
            _symbolic_agrees_with_concrete(expr, fs)


def _random_expr(rng, depth):
    paths = ["/a", "/a/b", "/a/f", "/f", "/g"]
    if depth == 0 or rng.random() < 0.35:
        kind = rng.choice(["id", "err", "mkdir", "creat", "rm", "cp"])
        if kind == "id":
            return ID
        if kind == "err":
            return ERR
        if kind == "mkdir":
            return mkdir(rng.choice(paths))
        if kind == "creat":
            return creat(rng.choice(paths), rng.choice(["x", "y"]))
        if kind == "rm":
            return rm(rng.choice(paths))
        return cp(rng.choice(paths), rng.choice(paths))
    if rng.random() < 0.5:
        return seq(_random_expr(rng, depth - 1), _random_expr(rng, depth - 1))
    return ite(
        _random_pred(rng),
        _random_expr(rng, depth - 1),
        _random_expr(rng, depth - 1),
    )


def _random_pred(rng):
    paths = ["/a", "/a/b", "/f"]
    p = Path.of(rng.choice(paths))
    base = rng.choice([none_(p), file_(p), dir_(p), emptydir_(p)])
    if rng.random() < 0.3:
        return pnot(base)
    return base


class TestEncoderPropertyBased:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_random_exprs_random_states(self, seed):
        rng = random.Random(seed)
        expr = _random_expr(rng, depth=3)
        domains = PathDomains.for_exprs([expr])
        for _ in range(5):
            fs = _random_fs(rng, domains)
            _symbolic_agrees_with_concrete(expr, fs)


def _random_fs(rng, domains):
    entries = {}
    for p in sorted(domains.paths):
        roll = rng.random()
        if roll < 0.35:
            continue
        parent = p.parent()
        if not parent.is_root and not (
            parent in entries and entries[parent] is DIR
        ):
            continue  # keep it well-formed
        if roll < 0.7:
            entries[p] = DIR
        else:
            entries[p] = FileContent(rng.choice(sorted(domains.contents(p))))
    return FileSystem(entries)


class TestSatQueries:
    def test_emptydir_vs_dir_inequivalence_found(self):
        """The paper's §4.2 completeness example: the fresh witness
        child makes the SAT query find the inequality."""
        p = Path.of("/a")
        e1 = ite(emptydir_(p), ID, ERR)
        e2 = ite(dir_(p), ID, ERR)
        bank = TermBank()
        domains = PathDomains.for_exprs([e1, e2])
        init = initial_state(bank, domains)
        s1 = apply_expr(bank, init, e1)
        s2 = apply_expr(bank, init, e2)
        goal = bank.and_(
            initial_constraints(bank, domains),
            states_differ(bank, s1, s2, domains.paths),
        )
        result = check_sat(bank, goal)
        assert result.sat
        witness = decode_filesystem(domains, result.named_model)
        # The witness must demonstrate the difference concretely.
        assert eval_expr(e1, witness) != eval_expr(e2, witness)

    def test_equivalent_expressions_unsat(self):
        p = Path.of("/a")
        e1 = seq(mkdir(p), ite(dir_(p), ID, ERR))
        e2 = mkdir(p)
        bank = TermBank()
        domains = PathDomains.for_exprs([e1, e2])
        init = initial_state(bank, domains)
        s1 = apply_expr(bank, init, e1)
        s2 = apply_expr(bank, init, e2)
        goal = bank.and_(
            initial_constraints(bank, domains),
            states_differ(bank, s1, s2, domains.paths),
        )
        assert not check_sat(bank, goal).sat

    def test_creat_different_content_differs(self):
        e1 = creat("/f", "one")
        e2 = creat("/f", "two")
        bank = TermBank()
        domains = PathDomains.for_exprs([e1, e2])
        init = initial_state(bank, domains)
        s1 = apply_expr(bank, init, e1)
        s2 = apply_expr(bank, init, e2)
        goal = bank.and_(
            initial_constraints(bank, domains),
            states_differ(bank, s1, s2, domains.paths),
        )
        result = check_sat(bank, goal)
        assert result.sat
        witness = decode_filesystem(domains, result.named_model)
        assert eval_expr(e1, witness) != eval_expr(e2, witness)

    def test_write_vs_skip_needs_generic_content(self):
        """creat(f, x) when absent vs id: differs when f exists with
        content ≠ x — requires the ω generic contents."""
        p = Path.of("/f")
        e1 = ite(none_(p), creat(p, "x"), ID)
        e2 = ite(none_(p), creat(p, "x"), seq(rm(p), creat(p, "x")))
        bank = TermBank()
        domains = PathDomains.for_exprs([e1, e2])
        init = initial_state(bank, domains)
        s1 = apply_expr(bank, init, e1)
        s2 = apply_expr(bank, init, e2)
        goal = bank.and_(
            initial_constraints(bank, domains),
            states_differ(bank, s1, s2, domains.paths),
        )
        result = check_sat(bank, goal)
        assert result.sat
        witness = decode_filesystem(domains, result.named_model)
        assert eval_expr(e1, witness) != eval_expr(e2, witness)
