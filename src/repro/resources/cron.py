"""FS model for the ``cron`` resource type: one file per job under
``/var/spool/cron/<user>/``, content derived from the schedule and
command so that conflicting definitions of the same job collide."""

from __future__ import annotations

from repro.errors import ResourceModelError
from repro.fs import Expr, ID, Path, creat, file_, file_with, ite, rm, seq
from repro.resources.base import Resource, ensure_directory_tree

CRON_ROOT = Path.of("/var/spool/cron")


def job_path(user: str, title: str) -> Path:
    return CRON_ROOT.child(user).child(title.replace("/", "_"))


def compile_cron(resource: Resource, context) -> Expr:
    user = resource.get_str("user") or "root"
    ensure = (resource.get_str("ensure") or "present").lower()
    command = resource.get_str("command")
    path = job_path(user, resource.title)
    if ensure == "present":
        if command is None:
            raise ResourceModelError(
                f"{resource.ref}: the command attribute is required"
            )
        schedule = ":".join(
            str(resource.get_str(k) or "*")
            for k in ("minute", "hour", "monthday", "month", "weekday")
        )
        content = f"cron:{schedule}:{command}"
        return seq(
            ensure_directory_tree([path]),
            ite(
                file_with(path, content),
                ID,
                seq(ite(file_(path), rm(path), ID), creat(path, content)),
            ),
        )
    if ensure == "absent":
        return ite(file_(path), rm(path), ID)
    raise ResourceModelError(
        f"{resource.ref}: unsupported ensure => {ensure!r}"
    )
