"""Models for trivial or rejected resource types.

``notify`` only logs a message — a no-op on the filesystem.  ``exec``
runs arbitrary shell, which has no tractable FS model; per §8 of the
paper Rehearsal rejects manifests that use it.
"""

from __future__ import annotations

from repro.errors import UnsupportedResourceError
from repro.fs import Expr, ID
from repro.resources.base import Resource


def compile_notify(resource: Resource, context) -> Expr:
    return ID


def compile_exec(resource: Resource, context) -> Expr:
    raise UnsupportedResourceError(
        f"{resource.ref}: exec resources run arbitrary shell commands and "
        "cannot be modeled soundly (paper §8); remove or replace them"
    )


def compile_anchor(resource: Resource, context) -> Expr:
    """The stdlib anchor pattern: pure ordering, no effect."""
    return ID
