"""Deterministic portfolio racing over CDCL configurations.

:class:`PortfolioBackend` implements :class:`repro.sat.backend.SolverBackend`
by racing K :class:`repro.sat.backend.SolverConfig` members on each
``solve()`` call.  The classic hazard of portfolio SAT is losing
reproducibility: whichever worker answers first wins, so the model (and
with it every downstream verdict, witness order and unsat core) depends
on OS scheduling.  This implementation races in **logical time**
instead of wall-clock time:

* a call proceeds in *rounds* with geometrically escalating conflict
  budgets (512, 2048, 8192, …);
* member 0 — the reference configuration, running **in-process on a
  persistent solver** exactly like the sequential backend — always
  attempts first in each round;
* if it exhausts the round budget, the remaining members each get one
  *stateless* attempt at the same budget: a fresh solver rebuilt from
  the clause log (optionally preprocessed, per config), so an attempt's
  outcome is a pure function of (config, clauses, assumptions, budget);
* the winner is the lowest-indexed member that completes in the
  earliest round.

Because every attempt is deterministic and the winner is chosen by
(round, index) rather than arrival time, running helpers across a
process pool (``workers > 1``) returns byte-identical results to
running them serially in-process.  And because the first-round budget
(:data:`FIRST_ROUND_BUDGET`) exceeds the hardness of every query the
Rehearsal corpus produces, member 0 wins round 0 on those instances —
making portfolio results byte-identical to the sequential backend
there, which is what the parity acceptance tests pin down.

Helper effort is scratch work on throwaway solvers; the incremental
counters exposed to the query layer (``conflicts``/``decisions``/…)
are the persistent reference member's, mirroring the sequential
backend's accounting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import SolverError
from repro.sat.preprocess import preprocess
from repro.sat.solver import SolveResult, Solver

#: Conflict budget of round 0.  Chosen above the hardest single query
#: in the §6 corpus and the fuzz generator's envelope, so the reference
#: member normally answers before any diversified helper runs at all.
FIRST_ROUND_BUDGET = 512

#: Budget multiplier between rounds.  Geometric escalation keeps total
#: wasted effort within a constant factor of the winning attempt's.
BUDGET_GROWTH = 4

_BUDGET_MSG = "conflict budget exhausted"


def _helper_attempt(
    config,
    clauses: List[List[int]],
    num_vars: int,
    assumptions: List[int],
    budget: int,
) -> Optional[SolveResult]:
    """One stateless attempt: fresh solver under ``config`` on a
    snapshot of the clause log.  Returns None when the budget runs out.
    Module-level and argument-pure so a process pool can run it."""
    pre = None
    solver = Solver(config=config)
    if config.preprocess:
        frozen = {abs(lit) for lit in assumptions}
        pre = preprocess(clauses, num_vars, frozen)
        if pre.unsat:
            return SolveResult(False)
        solver.ensure_vars(pre.num_vars)
        for clause in pre.clauses:
            solver.add_clause(clause)
        # Forced frozen assignments stay visible to assumption queries
        # (preprocessing strips the unit clauses that imply them).
        for var, value in pre.assigned.items():
            if var in frozen:
                solver.add_clause([var if value else -var])
    else:
        solver.ensure_vars(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
    try:
        result = solver.solve(assumptions, max_conflicts=budget)
    except SolverError as exc:
        if str(exc) == _BUDGET_MSG:
            return None
        raise
    if result.sat and pre is not None:
        result.assignment = pre.reconstruct(result.assignment)
    return result


class PortfolioBackend:
    """Race ``configs`` on every query; see the module docstring.

    ``configs[0]`` must be the reference configuration — it runs on a
    persistent in-process solver and so carries the incremental state
    (learned clauses, activities) across calls exactly like the
    sequential backend.  ``workers > 1`` runs helper attempts across a
    process pool; results are identical either way.
    """

    def __init__(self, configs: Sequence, workers: int = 1):
        if not configs:
            raise ValueError("portfolio needs at least one config")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.configs = tuple(configs)
        self.workers = workers
        self._reference = Solver(config=self.configs[0])
        self._clause_log: List[List[int]] = []
        self._declared_vars = 0
        self._pool = None

    # -- SolverBackend surface ------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._reference.num_vars

    @property
    def conflicts(self) -> int:
        return self._reference.conflicts

    @property
    def decisions(self) -> int:
        return self._reference.decisions

    @property
    def propagations(self) -> int:
        return self._reference.propagations

    @property
    def restarts(self) -> int:
        return self._reference.restarts

    def ensure_vars(self, n: int) -> None:
        self._declared_vars = max(self._declared_vars, n)
        self._reference.ensure_vars(n)

    def add_clause(self, lits: Sequence[int]) -> None:
        self._clause_log.append(list(lits))
        self._reference.add_clause(lits)

    def root_units(self) -> List[int]:
        return self._reference.root_units()

    def clause_database(
        self, include_learned: bool = False
    ) -> List[List[int]]:
        return self._reference.clause_database(include_learned)

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> SolveResult:
        """A caller ``max_conflicts`` is a budget on *total* portfolio
        effort: reference conflicts and exhausted helper attempts both
        charge against it, helper budgets are clamped to what remains,
        and exhaustion raises :class:`SolverError` exactly like the
        sequential backend (so budget semantics cannot diverge between
        backends — the clamp is a pure function of the call history,
        keeping results deterministic)."""
        assumptions = list(assumptions)
        budget = FIRST_ROUND_BUDGET
        spent = 0  # conflicts charged to this call, all members
        helpers = len(self.configs) - 1
        while True:
            ref_budget = budget
            if max_conflicts is not None:
                ref_budget = min(budget, max_conflicts - spent)
                if ref_budget <= 0:
                    raise SolverError(_BUDGET_MSG)
            before = self._reference.conflicts
            try:
                return self._reference.solve(
                    assumptions, max_conflicts=ref_budget
                )
            except SolverError as exc:
                if str(exc) != _BUDGET_MSG:
                    raise
                spent += self._reference.conflicts - before
            helper_budget = budget
            if max_conflicts is not None:
                remaining = max_conflicts - spent
                if remaining <= 0:
                    raise SolverError(_BUDGET_MSG)
                helper_budget = min(budget, remaining)
            winner = self._race_helpers(assumptions, helper_budget)
            if winner is not None:
                return winner
            # No helper finished, so each one burned its whole budget
            # on a throwaway solver; charge that effort to the call.
            spent += helper_budget * helpers
            if max_conflicts is not None and spent >= max_conflicts:
                raise SolverError(_BUDGET_MSG)
            budget *= BUDGET_GROWTH

    # -- helper racing --------------------------------------------------------

    def _race_helpers(
        self, assumptions: List[int], budget: int
    ) -> Optional[SolveResult]:
        """One round of stateless attempts by members 1..K-1; the
        lowest-indexed completed attempt wins.  With ``workers > 1``
        the attempts run on a process pool, but the winner is still
        chosen by index, so the answer does not depend on scheduling."""
        helpers = self.configs[1:]
        if not helpers:
            return None
        num_vars = max(self._declared_vars, self._reference.num_vars)
        args = [
            (config, self._clause_log, num_vars, assumptions, budget)
            for config in helpers
        ]
        if self.workers > 1:
            pool = self._ensure_pool()
            futures = [pool.submit(_helper_attempt, *a) for a in args]
            winner: Optional[SolveResult] = None
            for future in futures:
                if winner is not None:
                    # A lower-indexed member already answered; later
                    # members cannot win this round.
                    future.cancel()
                    continue
                winner = future.result()
            return winner
        for a in args:
            outcome = _helper_attempt(*a)
            if outcome is not None:
                return outcome
        return None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=min(self.workers, max(1, len(self.configs) - 1))
            )
        return self._pool

    def close(self) -> None:
        """Shut down the helper pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass
