"""The differential driver, the shrinker, and the ``rehearsal fuzz``
CLI — including the acceptance drill: a deliberately sabotaged
exploration memo must be caught and shrunk to a tiny reproducer."""

import json
from unittest import mock

import pytest

from repro.core import cli
from repro.smt.state import SymbolicState
from repro.testing import (
    CaseGenerator,
    FuzzSession,
    run_source,
    shrink_case,
)

NONDET = """
file { '/etc/app.conf': content => 'one' }
file { 'dup':
  path    => '/etc/app.conf',
  content => 'two',
}
"""

DET = """
file { '/etc/app.conf': content => 'one' }
file { '/etc/other.conf': content => 'two' }
"""


class TestRunSource:
    def test_agreement_on_nondeterministic_manifest(self):
        outcome = run_source(NONDET, name="nondet")
        assert outcome.pipeline_deterministic is False
        assert outcome.oracle_deterministic is False
        assert outcome.agreed, outcome.kinds()
        # Localization agreed with the concrete ground truth: the
        # blamed pair is among the concretely racing ones, which for
        # this manifest is exactly the two writers of /etc/app.conf.
        assert outcome.oracle_racing == [
            ("File['/etc/app.conf']", "File['dup']")
        ]
        assert outcome.race_pair in outcome.oracle_racing
        assert outcome.race_path == "/etc/app.conf"

    def test_agreement_on_deterministic_manifest(self):
        outcome = run_source(DET, name="det")
        assert outcome.pipeline_deterministic is True
        assert outcome.oracle_deterministic is True
        assert outcome.agreed, outcome.kinds()

    def test_seeded_stream_has_no_disagreements(self):
        # The production pipeline vs. the oracle over a seeded block:
        # any disagreement here is a real soundness bug somewhere.
        gen = CaseGenerator(1234)
        for i in range(25):
            case = gen.generate(i)
            outcome = run_source(
                case.source, name=case.name, oracle_seed=case.case_seed
            )
            assert outcome.agreed, (i, case.bug, outcome.kinds())

    def test_pipeline_error_is_a_disagreement(self):
        outcome = run_source("file { '/x': ensure => 'link' }")
        assert outcome.kinds() == ["pipeline_error"]


@pytest.fixture
def no_incremental_store(monkeypatch):
    """Force the incremental store off for sabotaged-analysis runs.

    The sabotage drills deliberately break the exploration so the
    pipeline reaches wrong verdicts.  When the suite runs with
    ``REHEARSAL_INCREMENTAL=1`` (the CI matrix cell), those wrong
    verdicts would be recorded into the shared persistent store and
    served back to every later test that replays the same seeded
    catalogs — poisoning the whole session.  A cache faithfully
    replaying corrupted analysis is working as designed; the drill,
    not the store, must opt out.
    """
    monkeypatch.setenv("REHEARSAL_INCREMENTAL", "0")


class TestSabotageDrill:
    """Acceptance criteria: ``use_memoization`` with a sabotaged
    fingerprint merges every symbolic state, so the pipeline calls
    everything deterministic; the fuzzer must catch it and shrink the
    finding to a ≤ 4-resource reproducer."""

    def test_sabotaged_fingerprint_is_caught_and_shrunk(
        self, no_incremental_store
    ):
        with mock.patch.object(
            SymbolicState, "fingerprint", lambda self: 0
        ):
            summary = FuzzSession(
                seed=42, budget_seconds=60, cases=8, shrink=True
            ).run()
        assert summary.disagreement_count >= 1
        for finding in summary.findings:
            assert "missed_nondet" in finding.outcome.kinds()
            assert len(finding.reproducer.resources) <= 4
        # The shrunk reproducer still disagrees under sabotage and is
        # agreed-upon by the healthy pipeline.
        repro = summary.findings[0].reproducer
        healthy = run_source(repro.source, oracle_seed=repro.case_seed)
        assert healthy.agreed
        assert healthy.pipeline_deterministic is False

    def test_sabotage_summary_records_findings(self, no_incremental_store):
        with mock.patch.object(
            SymbolicState, "fingerprint", lambda self: 0
        ):
            summary = FuzzSession(
                seed=42, budget_seconds=60, cases=8, shrink=False
            ).run()
        payload = json.loads(summary.to_json())
        assert payload["disagreement_count"] == len(payload["findings"])
        assert payload["disagreement_count"] >= 1
        first = payload["findings"][0]
        assert first["kinds"] == ["missed_nondet"]
        assert first["case_seed"] == CaseGenerator(42).generate(
            first["case_id"]
        ).case_seed


class TestSessionDeterminism:
    def test_same_seed_byte_identical_summary(self):
        a = FuzzSession(seed=9, budget_seconds=60, cases=12).run()
        b = FuzzSession(seed=9, budget_seconds=60, cases=12).run()
        assert a.to_json() == b.to_json()

    def test_budget_derives_quota(self):
        session = FuzzSession(seed=1, budget_seconds=20)
        assert session.quota == 100
        explicit = FuzzSession(seed=1, budget_seconds=20, cases=7)
        assert explicit.quota == 7

    def test_wall_clock_safety_stop_marks_truncated(self):
        session = FuzzSession(seed=1, budget_seconds=0.0, cases=50)
        summary = session.run()
        assert summary.truncated
        assert summary.cases_run < 50


class TestShrinker:
    def test_shrinks_to_minimal_racing_pair(self):
        gen = CaseGenerator(42)
        # case 5 is a shared-write with an extra bystander resource.
        case = next(
            gen.generate(i)
            for i in range(20)
            if gen.generate(i).bug == "shared-write"
            and len(gen.generate(i).resources) >= 3
        )

        def still_nondet(candidate):
            outcome = run_source(
                candidate.source, oracle_seed=candidate.case_seed
            )
            return outcome.pipeline_deterministic is False

        shrunk, attempts = shrink_case(case, still_nondet)
        assert len(shrunk.resources) == 2
        assert attempts >= 1
        outcome = run_source(shrunk.source, oracle_seed=shrunk.case_seed)
        assert outcome.pipeline_deterministic is False

    def test_failing_predicate_returns_original(self):
        case = CaseGenerator(42).generate(0)
        shrunk, _ = shrink_case(case, lambda c: False)
        assert shrunk.source == case.source

    def test_crashing_predicate_is_a_refusal_not_a_crash(self):
        case = CaseGenerator(42).generate(0)

        def explodes(candidate):
            raise RuntimeError("candidate broke the toolchain")

        shrunk, _ = shrink_case(case, explodes)
        assert shrunk.source == case.source

    def test_attempt_cap_is_respected(self):
        case = CaseGenerator(42).generate(3)
        calls = []

        def count(candidate):
            calls.append(1)
            return False

        shrink_case(case, count, max_attempts=5)
        assert len(calls) <= 5


class TestFuzzCli:
    def test_clean_run_exit_zero_and_deterministic_output(self, tmp_path):
        out_a = tmp_path / "a"
        out_b = tmp_path / "b"
        assert (
            cli.main(
                ["fuzz", "--seed", "42", "--cases", "15", "--quiet",
                 "--out", str(out_a)]
            )
            == 0
        )
        assert (
            cli.main(
                ["fuzz", "--seed", "42", "--cases", "15", "--quiet",
                 "--out", str(out_b)]
            )
            == 0
        )
        summary_a = (out_a / "summary.json").read_bytes()
        summary_b = (out_b / "summary.json").read_bytes()
        assert summary_a == summary_b
        payload = json.loads(summary_a)
        assert payload["seed"] == 42
        assert payload["cases_run"] == 15
        assert payload["disagreement_count"] == 0

    def test_disagreement_exits_one_and_writes_reproducer(
        self, tmp_path, capsys, no_incremental_store
    ):
        out = tmp_path / "fuzz"
        with mock.patch.object(
            SymbolicState, "fingerprint", lambda self: 0
        ):
            code = cli.main(
                ["fuzz", "--seed", "42", "--cases", "6", "--shrink",
                 "--quiet", "--out", str(out)]
            )
        assert code == 1
        captured = capsys.readouterr()
        assert "DISAGREEMENT" in captured.err
        repros = sorted(out.glob("repro-*.pp"))
        assert repros, "every finding ships a reproducer file"
        from repro.testing.regressions import parse_header

        header = parse_header(repros[0].read_text(), repros[0].name)
        assert header.seed == 42
        assert header.disagreement == "missed_nondet"

    def test_truncated_explicit_cases_exit_three(self):
        # An explicit --cases pins coverage: when the wall clock stops
        # the run short, success (exit 0) would be a lie.
        code = cli.main(
            ["fuzz", "--seed", "1", "--cases", "50", "--budget",
             "0.000001", "--quiet"]
        )
        assert code == 3

    def test_reproduction_hint_echoes_nondefault_knobs(
        self, capsys, no_incremental_store
    ):
        with mock.patch.object(
            SymbolicState, "fingerprint", lambda self: 0
        ):
            code = cli.main(
                ["fuzz", "--seed", "42", "--cases", "6", "--quiet",
                 "--edge-density", "0.5"]
            )
        assert code == 1
        err = capsys.readouterr().err
        assert "--edge-density 0.5" in err, (
            "cases are a function of the generator config; the "
            "reproduce hint must echo non-default knobs"
        )

    def test_bad_invocations_exit_two(self, tmp_path):
        assert cli.main(["fuzz", "--budget", "0"]) == 2
        assert cli.main(["fuzz", "--cases", "0"]) == 2
        assert cli.main(["fuzz", "--max-resources", "9"]) == 2
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        assert (
            cli.main(["fuzz", "--cases", "1", "--out", str(blocked)])
            == 2
        )


class TestLintCrossExamination:
    """``--lint``: the static analyzer runs on every case and its
    definite races (REH005) are checked against the oracle — which is
    fed lint's own divergence witnesses, so a bogus witness cannot
    hide in an unsampled state."""

    def test_run_source_records_lint_verdicts(self):
        outcome = run_source(NONDET, name="nondet", lint=True)
        assert outcome.lint_ran
        assert outcome.lint_definite_pairs == [
            ("File['/etc/app.conf']", "File['dup']")
        ]
        assert not outcome.lint_missed_definite_race
        assert outcome.agreed, outcome.kinds()
        assert outcome.to_dict()["lint"]["definite_pairs"]

    def test_lint_off_by_default(self):
        outcome = run_source(NONDET, name="nondet")
        assert not outcome.lint_ran
        assert outcome.to_dict()["lint"] is None

    def test_seeded_session_has_no_false_races(self):
        summary = FuzzSession(seed=7, cases=40, lint=True).run()
        assert summary.lint_enabled
        assert summary.lint_false_races == 0
        assert summary.lint_definite_races > 0
        payload = json.loads(summary.to_json())
        assert payload["schema"] == 2
        assert payload["lint"]["enabled"] is True
        assert payload["lint"]["false_races"] == 0

    def test_false_race_is_a_failing_disagreement(self):
        """Sabotage drill: force lint to claim a definite race on a
        deterministic case and the session must go red."""
        from repro.analysis.lint import LintReport
        from repro.testing import differential

        real_lint_graph = None

        def sabotaged(graph, programs, name="<graph>", options=None):
            report = real_lint_graph(graph, programs, name, options)
            if not report.definite_race_pairs():
                nodes = sorted(map(str, graph.nodes))[:2]
                if len(nodes) == 2:
                    from repro.analysis.lint import RaceWitness
                    from repro.fs.filesystem import FileSystem

                    report.race_witnesses.append(
                        RaceWitness(
                            a=nodes[0],
                            b=nodes[1],
                            initial=FileSystem.empty(),
                            order_a=tuple(nodes),
                            order_b=tuple(reversed(nodes)),
                            outcome_a="forged-one",
                            outcome_b="forged-two",
                        )
                    )
            return report

        import repro.analysis.lint as lint_pkg

        real_lint_graph = lint_pkg.lint_graph
        with mock.patch.object(lint_pkg, "lint_graph", sabotaged):
            outcome = run_source(DET, name="det", lint=True)
        assert any(
            d.kind == "lint_false_race" for d in outcome.disagreements
        )
        assert not outcome.agreed

    def test_cli_lint_flag_reports_and_stays_green(self, capsys):
        assert (
            cli.main(
                ["fuzz", "--seed", "42", "--cases", "25", "--lint",
                 "--quiet"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "false race(s)" in out
        assert "0 false race(s)" in out
