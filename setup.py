from setuptools import find_packages, setup

setup(
    name="repro-rehearsal",
    version="0.1.0",
    description=(
        "Reproduction of Rehearsal: a configuration verification tool "
        "for Puppet (PLDI 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # The benchmark corpus ships as data files next to repro.corpus;
    # without this the manifests silently vanish from wheels/sdists and
    # load_source() fails on every installed copy.
    package_data={"repro.corpus": ["manifests/*.pp"]},
    include_package_data=True,
    # importlib.resources.files() (repro.corpus) needs 3.9+.
    python_requires=">=3.9",
    install_requires=["networkx"],
)
