"""repro — a from-scratch reproduction of *Rehearsal: A Configuration
Verification Tool for Puppet* (Shambaugh, Weiss, Guha — PLDI 2016).

Public API tour:

* :class:`repro.Rehearsal` — the end-to-end tool: parse a Puppet
  manifest, build its resource graph, and verify determinism and
  idempotence.
* :mod:`repro.puppet` — the Puppet DSL frontend (§3.1).
* :mod:`repro.fs` — the FS language of filesystem operations (§3.2).
* :mod:`repro.resources` — resource models, C : R → FS (§3.3).
* :mod:`repro.analysis` — determinacy (§4), idempotence and invariants
  (§5), plus the scaling analyses (commutativity, pruning,
  elimination).
* :mod:`repro.smt`, :mod:`repro.logic`, :mod:`repro.sat` — the solver
  substrate replacing Z3 (see DESIGN.md).
* :mod:`repro.corpus` — the 13 benchmark configurations of §6.
* :mod:`repro.service` — batch verification: :class:`BatchVerifier` /
  :func:`verify_batch` fan a fleet of manifests out to worker
  processes behind a content-addressed :class:`VerdictCache`.
"""

# The service package reads repro.__version__ (it keys the verdict
# cache), so the version must be bound before repro.service imports.
# 1.3.0: race localization validates candidate pairs concretely on the
# witness (race_pair/race_path in cached rows can change), and the
# differential-fuzzing subsystem (repro.testing) ships.
__version__ = "1.4.0"

from repro.analysis.determinism import DeterminismOptions, DeterminismResult
from repro.analysis.idempotence import IdempotenceResult
from repro.core.pipeline import Rehearsal, VerificationReport
from repro.errors import (
    AnalysisBudgetExceeded,
    DependencyCycleError,
    PuppetEvalError,
    PuppetSyntaxError,
    ReproError,
    ResourceModelError,
)
from repro.service import (
    BatchReport,
    BatchVerifier,
    ManifestResult,
    VerdictCache,
    verify_batch,
)

__all__ = [
    "AnalysisBudgetExceeded",
    "BatchReport",
    "BatchVerifier",
    "DependencyCycleError",
    "DeterminismOptions",
    "DeterminismResult",
    "IdempotenceResult",
    "ManifestResult",
    "PuppetEvalError",
    "PuppetSyntaxError",
    "Rehearsal",
    "ReproError",
    "ResourceModelError",
    "VerdictCache",
    "VerificationReport",
    "verify_batch",
    "__version__",
]
