"""Tests for the FS pretty printer and expression utilities."""

from repro.fs import (
    ERR,
    ID,
    Path,
    cp,
    creat,
    dir_,
    emptydir_,
    file_,
    file_with,
    ite,
    mkdir,
    none_,
    pand,
    pnot,
    por,
    rm,
    seq,
)
from repro.fs.pretty import expr_to_str, pred_to_str
from repro.fs.syntax import expr_size, subexpressions


class TestPredPrinting:
    def test_atoms(self):
        p = Path.of("/a")
        assert pred_to_str(none_(p)) == "none?(/a)"
        assert pred_to_str(file_(p)) == "file?(/a)"
        assert pred_to_str(dir_(p)) == "dir?(/a)"
        assert pred_to_str(emptydir_(p)) == "emptydir?(/a)"
        assert "filecontains?" in pred_to_str(file_with(p, "x"))

    def test_connectives(self):
        p = Path.of("/a")
        assert pred_to_str(pnot(file_(p))) == "!file?(/a)"
        assert pred_to_str(pand(file_(p), dir_(p))) == (
            "file?(/a) && dir?(/a)"
        )
        assert pred_to_str(por(file_(p), dir_(p))) == (
            "file?(/a) || dir?(/a)"
        )

    def test_nested_parenthesized(self):
        p = Path.of("/a")
        text = pred_to_str(pnot(pand(file_(p), dir_(p))))
        assert text == "!(file?(/a) && dir?(/a))"


class TestExprPrinting:
    def test_primitives(self):
        assert expr_to_str(ID) == "id"
        assert expr_to_str(ERR) == "err"
        assert expr_to_str(mkdir("/a")) == "mkdir(/a)"
        assert expr_to_str(creat("/f", "x")) == "creat(/f, 'x')"
        assert expr_to_str(rm("/f")) == "rm(/f)"
        assert expr_to_str(cp("/a", "/b")) == "cp(/a, /b)"

    def test_seq_on_lines(self):
        text = expr_to_str(seq(mkdir("/a"), rm("/a")))
        assert text == "mkdir(/a);\nrm(/a)"

    def test_if_without_else(self):
        text = expr_to_str(ite(none_(Path.of("/a")), mkdir("/a")))
        assert "if (none?(/a))" in text
        assert "else" not in text

    def test_if_with_else(self):
        text = expr_to_str(ite(none_(Path.of("/a")), mkdir("/a"), ERR))
        assert "else" in text

    def test_indentation(self):
        text = expr_to_str(ite(none_(Path.of("/a")), mkdir("/a")))
        assert "\n  mkdir(/a)" in text


class TestUtilities:
    def test_expr_size(self):
        assert expr_size(ID) == 1
        assert expr_size(seq(mkdir("/a"), rm("/a"))) == 3

    def test_subexpressions_root_first(self):
        e = seq(mkdir("/a"), rm("/a"))
        subs = list(subexpressions(e))
        assert subs[0] == e
        assert mkdir("/a") in subs
        assert rm("/a") in subs

    def test_smart_seq_flattens_id(self):
        assert seq(ID, mkdir("/a"), ID) == mkdir("/a")
        assert seq() == ID

    def test_smart_seq_err_cuts(self):
        assert seq(ERR, mkdir("/a")) == ERR

    def test_smart_ite_constant_folding(self):
        from repro.fs import TRUE, FALSE

        assert ite(TRUE, mkdir("/a"), ERR) == mkdir("/a")
        assert ite(FALSE, mkdir("/a"), ERR) == ERR
        assert ite(none_(Path.of("/a")), ID, ID) == ID
