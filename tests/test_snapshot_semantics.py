"""Tests for the snapshot package semantics extension.

Puppet queries the package manager once per run; the snapshot mode
materializes that behaviour in FS (see repro/resources/snapshot.py)
and is what reproduces the paper's Fig. 3c non-idempotence claim
exactly.
"""

import pytest

from repro import Rehearsal
from repro.fs import ERROR, FileSystem, eval_expr, seq
from repro.resources import ModelContext
from repro.resources.package import marker_path
from repro.resources.snapshot import SNAPSHOT_PRELUDE_NODE

FIG_3C = """
package{'golang-go': ensure => present }
package{'perl': ensure => absent }
"""

FIG_3C_ORDERED = FIG_3C + """
Package['perl'] -> Package['golang-go']
"""


@pytest.fixture()
def snapshot_tool():
    return Rehearsal(context=ModelContext(package_semantics="snapshot"))


@pytest.fixture()
def direct_tool():
    return Rehearsal()


class TestPreludeInjection:
    def test_prelude_node_added(self, snapshot_tool):
        graph, programs = snapshot_tool.compile(FIG_3C)
        assert SNAPSHOT_PRELUDE_NODE in graph.nodes
        assert SNAPSHOT_PRELUDE_NODE in programs
        # Every package depends on the prelude.
        assert graph.has_edge(SNAPSHOT_PRELUDE_NODE, "Package['golang-go']")
        assert graph.has_edge(SNAPSHOT_PRELUDE_NODE, "Package['perl']")

    def test_no_prelude_without_packages(self, snapshot_tool):
        graph, _ = snapshot_tool.compile("file{'/f': content => 'x' }")
        assert SNAPSHOT_PRELUDE_NODE not in graph.nodes

    def test_direct_mode_unchanged(self, direct_tool):
        graph, _ = direct_tool.compile(FIG_3C)
        assert SNAPSHOT_PRELUDE_NODE not in graph.nodes


class TestFig3cUnderSnapshot:
    def test_ordered_fig3c_is_deterministic(self, snapshot_tool):
        result = snapshot_tool.check_determinism(FIG_3C_ORDERED)
        assert result.deterministic

    def test_ordered_fig3c_is_not_idempotent(self, snapshot_tool):
        """The paper's §2 claim, reproducible only under snapshot
        semantics: run 1 installs both (go pulls perl back in); run 2
        snapshots 'both installed', removes perl (cascading to go) and
        then *skips* the go install because the snapshot says it was
        installed — the manifest oscillates."""
        result = snapshot_tool.check_idempotence(FIG_3C_ORDERED)
        assert not result.idempotent

    def test_ordered_fig3c_idempotent_under_direct(self, direct_tool):
        """Under execution-time checks the re-install happens in the
        same run and the manifest converges — documenting why snapshot
        mode exists."""
        assert direct_tool.check_determinism(FIG_3C_ORDERED).deterministic
        assert direct_tool.check_idempotence(FIG_3C_ORDERED).idempotent

    def test_oscillation_concretely(self, snapshot_tool):
        """Three consecutive runs from the empty machine: installed →
        removed → installed."""
        graph, programs = snapshot_tool.compile(FIG_3C_ORDERED)
        import networkx as nx

        order = list(nx.topological_sort(graph))
        run = seq(*[programs[n] for n in order])
        s1 = eval_expr(run, FileSystem.empty())
        assert s1 is not ERROR
        assert s1.is_file(marker_path("golang-go"))
        assert s1.is_file(marker_path("perl"))
        s2 = eval_expr(run, s1)
        assert s2 is not ERROR
        assert not s2.exists(marker_path("golang-go"))
        assert not s2.exists(marker_path("perl"))
        s3 = eval_expr(run, s2)
        assert s3 is not ERROR
        assert s3.is_file(marker_path("golang-go"))


class TestSnapshotStillCatchesRealBugs:
    def test_fig3a_still_nondeterministic(self, snapshot_tool):
        manifest = """
        file {"/etc/apache2/sites-available/000-default.conf":
          content => "site",
        }
        package {"apache2": ensure => present }
        """
        assert not snapshot_tool.check_determinism(manifest).deterministic

    def test_simple_package_idempotent(self, snapshot_tool):
        manifest = "package{'vim': ensure => present }"
        assert snapshot_tool.check_determinism(manifest).deterministic
        assert snapshot_tool.check_idempotence(manifest).idempotent
