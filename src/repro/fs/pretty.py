"""Pretty printer for FS expressions and predicates (paper-style notation)."""

from __future__ import annotations

from repro.fs import syntax as fx


def pred_to_str(pred: fx.Pred) -> str:
    if isinstance(pred, fx.PTrue):
        return "true"
    if isinstance(pred, fx.PFalse):
        return "false"
    if isinstance(pred, fx.IsNone):
        return f"none?({pred.path})"
    if isinstance(pred, fx.IsFile):
        return f"file?({pred.path})"
    if isinstance(pred, fx.IsDir):
        return f"dir?({pred.path})"
    if isinstance(pred, fx.IsEmptyDir):
        return f"emptydir?({pred.path})"
    if isinstance(pred, fx.IsFileWith):
        return f"filecontains?({pred.path}, {pred.content!r})"
    if isinstance(pred, fx.PNot):
        return f"!{_pred_atom(pred.inner)}"
    if isinstance(pred, fx.PAnd):
        return f"{_pred_atom(pred.left)} && {_pred_atom(pred.right)}"
    if isinstance(pred, fx.POr):
        return f"{_pred_atom(pred.left)} || {_pred_atom(pred.right)}"
    raise TypeError(f"unknown predicate: {pred!r}")


def _pred_atom(pred: fx.Pred) -> str:
    text = pred_to_str(pred)
    if isinstance(pred, (fx.PAnd, fx.POr)):
        return f"({text})"
    return text


def expr_to_str(expr: fx.Expr, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(expr, fx.Id):
        return f"{pad}id"
    if isinstance(expr, fx.Err):
        return f"{pad}err"
    if isinstance(expr, fx.Mkdir):
        return f"{pad}mkdir({expr.path})"
    if isinstance(expr, fx.Creat):
        return f"{pad}creat({expr.path}, {expr.content!r})"
    if isinstance(expr, fx.Rm):
        return f"{pad}rm({expr.path})"
    if isinstance(expr, fx.Cp):
        return f"{pad}cp({expr.src}, {expr.dst})"
    if isinstance(expr, fx.Seq):
        return (
            f"{expr_to_str(expr.first, indent)};\n"
            f"{expr_to_str(expr.second, indent)}"
        )
    if isinstance(expr, fx.If):
        head = f"{pad}if ({pred_to_str(expr.pred)})"
        then_text = expr_to_str(expr.then_branch, indent + 1)
        if isinstance(expr.else_branch, fx.Id):
            return f"{head}\n{then_text}"
        else_text = expr_to_str(expr.else_branch, indent + 1)
        return f"{head}\n{then_text}\n{pad}else\n{else_text}"
    raise TypeError(f"unknown expression: {expr!r}")
