"""The end-to-end Rehearsal pipeline.

``Rehearsal`` ties the whole system together: Puppet source → catalog →
resource graph → FS programs → determinacy analysis → (if
deterministic) idempotence and invariant checks — the tool the paper's
§6 evaluates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.analysis.determinism import (
    DeterminismOptions,
    DeterminismResult,
    check_determinism,
)
from repro.analysis.idempotence import IdempotenceResult, check_idempotence
from repro.analysis.invariants import (
    FinalStateProperty,
    InvariantResult,
    check_invariant,
)
from repro.errors import ReproError
from repro.fs import Expr, seq
from repro.puppet.evaluator import Evaluator
from repro.puppet.parser import parse_manifest
from repro.resources.compiler import ModelContext, ResourceCompiler


@dataclass
class VerificationReport:
    """Everything Rehearsal determined about one manifest."""

    manifest_name: str
    resource_count: int = 0
    deterministic: Optional[bool] = None
    idempotent: Optional[bool] = None
    determinism: Optional[DeterminismResult] = None
    idempotence: Optional[IdempotenceResult] = None
    error: Optional[str] = None
    error_transient: bool = False  # load-dependent (wall-clock timeout),
    # not a function of the manifest — never cached
    total_seconds: float = 0.0
    #: Resource ref (as graph-node string) → (line, col) of its
    #: declaration in the manifest source; 0 = span unknown.  Lets
    #: race messages say where the racing resources were declared.
    declared_at: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and bool(self.deterministic)
            and bool(self.idempotent)
        )

    @property
    def solver_seconds(self) -> float:
        """Time spent exploring, encoding and solving (excludes
        parse/compile): the part of a verification the verdict cache
        saves on a hit."""
        seconds = 0.0
        if self.determinism is not None:
            stats = self.determinism.stats
            seconds += (
                stats.explore_seconds
                + stats.encode_seconds
                + stats.solve_seconds
            )
        if self.idempotence is not None:
            seconds += self.idempotence.total_seconds
        return seconds


class Rehearsal:
    """The configuration verification tool (paper title!).

    Parameters mirror the paper's CLI: the platform selects the package
    database behaviour; options control the §4 scaling techniques.
    """

    def __init__(
        self,
        context: Optional[ModelContext] = None,
        options: Optional[DeterminismOptions] = None,
        facts: Optional[dict] = None,
        node_name: str = "default",
    ):
        self.context = context or ModelContext()
        self.options = options or DeterminismOptions()
        self.facts = facts
        self.node_name = node_name

    # -- pipeline stages ---------------------------------------------------

    def compile(self, source: str) -> Tuple["nx.DiGraph", Dict[str, Expr]]:
        """Manifest source → (resource graph, FS programs)."""
        manifest = parse_manifest(source)
        evaluator = Evaluator(facts=self.facts, node_name=self.node_name)
        catalog = evaluator.evaluate(manifest)
        graph = catalog.build_graph()
        compiler = ResourceCompiler(self.context)
        programs = {
            node: compiler.compile(data["entry"].resource)
            for node, data in graph.nodes(data=True)
        }
        if self.context.package_semantics == "snapshot":
            self._inject_snapshot_prelude(graph, programs)
        return graph, programs

    def _inject_snapshot_prelude(self, graph, programs) -> None:
        """Snapshot package semantics: add a prelude resource that
        mirrors installed-state into the snapshot area at the start of
        every run, with an edge to every package resource (see
        :mod:`repro.resources.snapshot`)."""
        from repro.resources.snapshot import (
            SNAPSHOT_EPILOGUE_NODE,
            SNAPSHOT_PRELUDE_NODE,
            packages_in_snapshot_scope,
            snapshot_epilogue,
            snapshot_prelude,
        )

        package_nodes = [
            node
            for node, data in graph.nodes(data=True)
            if data["entry"].resource.rtype == "package"
        ]
        if not package_nodes:
            return
        names = [
            graph.nodes[node]["entry"].resource.get_str("name")
            or graph.nodes[node]["entry"].resource.title
            for node in package_nodes
        ]
        scope = packages_in_snapshot_scope(self.context.package_db, names)
        graph.add_node(SNAPSHOT_PRELUDE_NODE)
        graph.add_node(SNAPSHOT_EPILOGUE_NODE)
        programs[SNAPSHOT_PRELUDE_NODE] = snapshot_prelude(scope)
        programs[SNAPSHOT_EPILOGUE_NODE] = snapshot_epilogue(scope)
        for node in package_nodes:
            graph.add_edge(SNAPSHOT_PRELUDE_NODE, node)
            graph.add_edge(node, SNAPSHOT_EPILOGUE_NODE)

    def check_determinism(self, source: str) -> DeterminismResult:
        graph, programs = self.compile(source)
        return check_determinism(graph, programs, self.options)

    def check_idempotence(self, source: str) -> IdempotenceResult:
        """Idempotence assumes determinism has been established
        (§5: these checks are unsound on non-deterministic manifests)."""
        graph, programs = self.compile(source)
        return check_idempotence(
            graph,
            programs,
            well_formed_initial=self.options.well_formed_initial,
        )

    def check_invariant(
        self, source: str, prop: FinalStateProperty, extra_paths=()
    ) -> InvariantResult:
        graph, programs = self.compile(source)
        order = list(nx.topological_sort(graph))
        e = seq(*[programs[n] for n in order])
        return check_invariant(
            e,
            prop,
            well_formed_initial=self.options.well_formed_initial,
            extra_paths=tuple(extra_paths),
        )

    # -- the full verification --------------------------------------------------

    def verify(
        self,
        source: str,
        name: str = "<manifest>",
        compiled: Optional[Tuple["nx.DiGraph", Dict[str, Expr]]] = None,
    ) -> VerificationReport:
        """Determinism first, then idempotence (gated, per §5).

        ``compiled`` — an already-computed :meth:`compile` result for
        ``source``; callers that need the graph and programs themselves
        (the differential fuzzer runs its oracle on them) pass it in so
        the frontend runs once per manifest.
        """
        report = VerificationReport(manifest_name=name)
        start = time.perf_counter()
        try:
            graph, programs = (
                compiled if compiled is not None else self.compile(source)
            )
        except ReproError as exc:
            report.error = str(exc)
            report.total_seconds = time.perf_counter() - start
            return report
        report.resource_count = graph.number_of_nodes()
        for node, data in graph.nodes(data=True):
            entry = data.get("entry")
            if entry is not None:
                report.declared_at[str(node)] = (
                    entry.resource.line,
                    entry.resource.col,
                )
        # One store handle for the whole verify: the determinism and
        # idempotence checks used to resolve it independently per
        # call; a resident daemon additionally pins this same handle
        # for its process lifetime (see repro.service.daemon), so
        # every request lands on the hot SQLite connection.
        store = None
        if self.options.incremental:
            # Lazy import: service.incremental is only needed on the
            # opt-in incremental path, and importing it eagerly would
            # wire the analysis layer to the service layer for every
            # caller.
            from repro.service.incremental import open_store

            store = open_store(
                getattr(self.options, "incremental_dir", None)
            )
        try:
            det = check_determinism(
                graph, programs, self.options, incremental_store=store
            )
            report.determinism = det
            report.deterministic = det.deterministic
            if det.deterministic:
                if self.options.incremental:
                    from repro.service.incremental import (
                        check_idempotence_incremental,
                    )

                    idem = check_idempotence_incremental(
                        graph,
                        programs,
                        options=self.options,
                        stats=det.stats,
                        store=store,
                    )
                else:
                    idem = check_idempotence(
                        graph,
                        programs,
                        well_formed_initial=self.options.well_formed_initial,
                    )
                report.idempotence = idem
                report.idempotent = idem.idempotent
        except ReproError as exc:
            # Notably AnalysisBudgetExceeded: a blown budget is a
            # reportable verdict ("could not decide within limits"),
            # not a crash.
            report.error = str(exc)
            report.error_transient = bool(
                getattr(exc, "wall_clock", False)
            )
        report.total_seconds = time.perf_counter() - start
        return report
