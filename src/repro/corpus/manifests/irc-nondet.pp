# ngircd — IRC server with an operator account (§6 benchmark "irc").
#
# SEEDED BUG: the operator's ssh_authorized_key is deployed into the
# operator's home directory, but declares no dependency on the
# User['ircops'] resource that creates that home directory — the
# real-world missing-user-account-dependency bug the paper reports.

class ngircd {
  $irc_name  = 'irc.example.com'
  $irc_motd  = 'Welcome to example.com IRC'

  package { 'ngircd':
    ensure => installed,
  }

  file { '/etc/ngircd/ngircd.conf':
    ensure  => file,
    content => "[Global]\nName = ${irc_name}\nMotdPhrase = ${irc_motd}\nPorts = 6667\n[Options]\nSyslogFacility = local1\n",
    require => Package['ngircd'],
  }

  service { 'ngircd':
    ensure    => running,
    enable    => true,
    subscribe => File['/etc/ngircd/ngircd.conf'],
  }
}

class ngircd::operator {
  user { 'ircops':
    ensure     => present,
    managehome => true,
  }

  # BUG: missing require => User['ircops'] (see irc-fixed.pp) — the
  # key lands in /home/ircops/.ssh, which only exists once the user
  # account (and its home directory) has been created.
  ssh_authorized_key { 'ircops@admin':
    ensure => present,
    user   => 'ircops',
    key    => 'AAAAB3NzaC1yc2EAAAADAQABAAABgQDJxOPerator',
  }
}

include ngircd
include ngircd::operator
