"""Offline package database.

The paper's Rehearsal queries a web service wrapping ``apt-file`` /
``repoquery`` for per-package file listings (§6) and caches the results.
This module is the offline substitute (see DESIGN.md): a curated table
of listings for every package the benchmarks and examples use, plus a
deterministic synthetic generator for unknown names so arbitrary
manifests remain analyzable.

Beyond file listings, entries carry ``depends`` edges.  Installing a
package installs its dependency closure and removing one removes its
reverse-dependency closure — the apt behaviour behind the paper's
Perl/Go silent-failure example (Fig. 3c).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import PackageNotFoundError
from repro.fs.paths import Path


@dataclass(frozen=True)
class PackageInfo:
    """One package: its regular files and its direct dependencies."""

    name: str
    files: tuple[str, ...]
    depends: tuple[str, ...] = ()

    def file_paths(self) -> List[Path]:
        return [Path.of(f) for f in self.files]


def _pkg(name: str, files: Sequence[str], depends: Sequence[str] = ()) -> PackageInfo:
    return PackageInfo(name, tuple(files), tuple(depends))


def _std_files(name: str, extra: Sequence[str] = ()) -> List[str]:
    """The typical layout shared by most server packages."""
    return [
        f"/usr/bin/{name}",
        f"/usr/share/doc/{name}/copyright",
        f"/usr/share/doc/{name}/changelog",
        *extra,
    ]


_CURATED: Dict[str, PackageInfo] = {}


def _register(info: PackageInfo) -> None:
    _CURATED[info.name] = info


# -- toolchains (Fig. 3b) ----------------------------------------------------

_register(_pkg("m4", _std_files("m4")))
_register(_pkg("make", _std_files("make", ["/usr/include/gnumake.h"])))
_register(
    _pkg(
        "gcc",
        _std_files(
            "gcc",
            ["/usr/bin/cc", "/usr/lib/gcc/specs", "/usr/include/stdc-predef.h"],
        ),
    )
)
_register(
    _pkg("ocaml", _std_files("ocaml", ["/usr/bin/ocamlc", "/usr/lib/ocaml/stdlib.cma"]))
)

# -- the Perl/Go pair (Fig. 3c): golang-go depends on perl on Ubuntu 14.04 ----

_register(
    _pkg(
        "perl",
        _std_files("perl", ["/usr/share/perl/Config.pm", "/usr/lib/perl/auto.ix"]),
    )
)
_register(
    _pkg(
        "golang-go",
        _std_files("golang-go", ["/usr/bin/go", "/usr/lib/go/pkg/runtime.a"]),
        depends=("perl",),
    )
)

# -- benchmark services -------------------------------------------------------

_register(
    _pkg(
        "apache2",
        [
            "/usr/sbin/apache2",
            "/usr/sbin/apachectl",
            "/etc/apache2/apache2.conf",
            "/etc/apache2/ports.conf",
            "/etc/apache2/envvars",
            "/etc/apache2/sites-available/000-default.conf",
            "/etc/apache2/mods-available/mpm_event.conf",
            "/etc/apache2/mods-available/ssl.conf",
            "/etc/apache2/conf-available/charset.conf",
            "/usr/share/doc/apache2/copyright",
            "/var/www/html/index.html",
        ],
    )
)
_register(
    _pkg(
        "nginx",
        [
            "/usr/sbin/nginx",
            "/etc/nginx/nginx.conf",
            "/etc/nginx/mime.types",
            "/etc/nginx/fastcgi_params",
            "/etc/nginx/sites-available/default",
            "/etc/nginx/conf.d/placeholder.conf",
            "/usr/share/doc/nginx/copyright",
            "/var/www/html/index.nginx-debian.html",
        ],
    )
)
_register(
    _pkg(
        "bind9",
        [
            "/usr/sbin/named",
            "/usr/bin/rndc",
            "/etc/bind/named.conf",
            "/etc/bind/named.conf.options",
            "/etc/bind/named.conf.local",
            "/etc/bind/db.root",
            "/etc/bind/db.local",
            "/usr/share/doc/bind9/copyright",
        ],
    )
)
_register(
    _pkg(
        "ntp",
        [
            "/usr/sbin/ntpd",
            "/usr/bin/ntpq",
            "/etc/ntp.conf",
            "/usr/share/doc/ntp/copyright",
            "/var/lib/ntp/ntp.conf.dhcp",
        ],
    )
)
_register(
    _pkg(
        "rsyslog",
        [
            "/usr/sbin/rsyslogd",
            "/etc/rsyslog.conf",
            "/etc/rsyslog.d/50-default.conf",
            "/usr/share/doc/rsyslog/copyright",
        ],
    )
)
_register(
    _pkg(
        "xinetd",
        [
            "/usr/sbin/xinetd",
            "/etc/xinetd.conf",
            "/etc/xinetd.d/echo",
            "/etc/xinetd.d/daytime",
            "/usr/share/doc/xinetd/copyright",
        ],
    )
)
_register(
    _pkg(
        "monit",
        [
            "/usr/bin/monit",
            "/etc/monit/monitrc",
            "/etc/monit/conf.d/placeholder",
            "/usr/share/doc/monit/copyright",
        ],
    )
)
_register(
    _pkg(
        "amavisd-new",
        [
            "/usr/sbin/amavisd-new",
            "/etc/amavis/conf.d/05-node_id",
            "/etc/amavis/conf.d/15-content_filter_mode",
            "/etc/amavis/conf.d/50-user",
            "/usr/share/doc/amavisd-new/copyright",
        ],
        depends=("perl",),
    )
)
_register(
    _pkg(
        "clamav",
        [
            "/usr/bin/clamscan",
            "/usr/bin/freshclam",
            "/etc/clamav/clamd.conf",
            "/etc/clamav/freshclam.conf",
            "/usr/share/doc/clamav/copyright",
        ],
    )
)
_register(
    _pkg(
        "clamav-daemon",
        [
            "/usr/sbin/clamd",
            "/etc/clamav/onaccess.conf",
            "/usr/share/doc/clamav-daemon/copyright",
        ],
        depends=("clamav",),
    )
)
_register(
    _pkg(
        "logstash",
        [
            "/usr/share/logstash/bin/logstash",
            "/etc/logstash/logstash.yml",
            "/etc/logstash/jvm.options",
            "/etc/logstash/conf.d/placeholder.conf",
            "/usr/share/doc/logstash/copyright",
        ],
        depends=("openjdk-8-jre-headless",),
    )
)
_register(
    _pkg(
        "openjdk-8-jre-headless",
        [
            "/usr/bin/java",
            "/usr/lib/jvm/java-8-openjdk/lib/rt.jar",
            "/usr/share/doc/openjdk-8-jre-headless/copyright",
        ],
    )
)
_register(
    _pkg(
        "ngircd",
        [
            "/usr/sbin/ngircd",
            "/etc/ngircd/ngircd.conf",
            "/usr/share/doc/ngircd/copyright",
        ],
    )
)
_register(
    _pkg(
        "dnsmasq",
        [
            "/usr/sbin/dnsmasq",
            "/etc/dnsmasq.conf",
            "/etc/dnsmasq.d/README",
            "/usr/share/doc/dnsmasq/copyright",
        ],
    )
)
_register(
    _pkg(
        "mysql-server",
        [
            "/usr/sbin/mysqld",
            "/usr/bin/mysql",
            "/etc/mysql/my.cnf",
            "/etc/mysql/conf.d/mysqld_safe_syslog.cnf",
            "/usr/share/doc/mysql-server/copyright",
        ],
    )
)
_register(
    _pkg(
        "php5-fpm",
        [
            "/usr/sbin/php5-fpm",
            "/etc/php5/fpm/php.ini",
            "/etc/php5/fpm/pool.d/www.conf",
            "/usr/share/doc/php5-fpm/copyright",
        ],
    )
)
_register(
    _pkg(
        "tomcat7",
        [
            "/usr/share/tomcat7/bin/catalina.sh",
            "/etc/tomcat7/server.xml",
            "/etc/tomcat7/tomcat-users.xml",
            "/etc/default/tomcat7",
            "/usr/share/doc/tomcat7/copyright",
        ],
        depends=("openjdk-8-jre-headless",),
    )
)
_register(
    _pkg(
        "postgresql",
        [
            "/usr/lib/postgresql/bin/postgres",
            "/etc/postgresql/postgresql.conf",
            "/etc/postgresql/pg_hba.conf",
            "/usr/share/doc/postgresql/copyright",
        ],
    )
)
_register(_pkg("vim", _std_files("vim", ["/usr/share/vim/vimrc"])))
_register(_pkg("git", _std_files("git", ["/usr/lib/git-core/git-remote-http"])))
_register(_pkg("curl", _std_files("curl")))
_register(_pkg("wget", _std_files("wget", ["/etc/wgetrc"])))
_register(_pkg("openssh-server", [
    "/usr/sbin/sshd",
    "/etc/ssh/sshd_config",
    "/etc/ssh/moduli",
    "/usr/share/doc/openssh-server/copyright",
]))


MARKER_ROOT = Path.of("/var/lib/pkg")
"""Installed-state markers live here: one file per installed package."""


class PackageDatabase:
    """Resolves package names to :class:`PackageInfo`.

    ``synthesize`` controls what happens for unknown names: generate a
    deterministic synthetic listing (default) or raise
    :class:`PackageNotFoundError` — the strict mode mirrors the paper's
    web service failing on packages absent from the distribution.
    """

    def __init__(
        self,
        extra: Optional[Dict[str, PackageInfo]] = None,
        synthesize: bool = True,
        synthetic_file_count: int = 6,
    ):
        self._table: Dict[str, PackageInfo] = dict(_CURATED)
        if extra:
            self._table.update(extra)
        self._synthesize = synthesize
        self._synthetic_file_count = synthetic_file_count

    def lookup(self, name: str) -> PackageInfo:
        info = self._table.get(name)
        if info is not None:
            return info
        if not self._synthesize:
            raise PackageNotFoundError(
                f"package {name!r} is not in the database "
                "(synthesis disabled)"
            )
        info = synthetic_package(name, self._synthetic_file_count)
        self._table[name] = info
        return info

    def register(self, info: PackageInfo) -> None:
        self._table[info.name] = info

    def known(self) -> List[str]:
        return sorted(self._table)

    def __contains__(self, name: str) -> bool:
        return name in self._table or self._synthesize

    # -- dependency closures ----------------------------------------------

    def install_closure(self, name: str) -> List[PackageInfo]:
        """The package and its transitive dependencies, dependencies
        first (install order)."""
        out: List[PackageInfo] = []
        seen: set[str] = set()

        def visit(pkg_name: str) -> None:
            if pkg_name in seen:
                return
            seen.add(pkg_name)
            info = self.lookup(pkg_name)
            for dep in info.depends:
                visit(dep)
            out.append(info)

        visit(name)
        return out

    def reverse_dependents(self, name: str) -> List[PackageInfo]:
        """Known packages that transitively depend on ``name``
        (dependents first — removal order)."""
        direct: Dict[str, set[str]] = {}
        for info in self._table.values():
            for dep in info.depends:
                direct.setdefault(dep, set()).add(info.name)
        out: List[str] = []
        seen: set[str] = set()

        def visit(pkg_name: str) -> None:
            for dependent in sorted(direct.get(pkg_name, ())):
                if dependent not in seen:
                    seen.add(dependent)
                    visit(dependent)
                    out.append(dependent)

        visit(name)
        out.reverse()
        return [self.lookup(n) for n in out]


def synthetic_package(name: str, file_count: int = 6) -> PackageInfo:
    """Deterministic synthetic listing for an unknown package.

    The layout mimics a typical Debian package (binary, docs, config)
    with name-seeded variation so distinct packages get distinct but
    reproducible footprints.
    """
    digest = hashlib.sha256(name.encode("utf8")).hexdigest()
    files = [
        f"/usr/bin/{name}",
        f"/usr/share/doc/{name}/copyright",
        f"/etc/{name}/{name}.conf",
    ]
    for i in range(max(0, file_count - len(files))):
        files.append(f"/usr/lib/{name}/lib{digest[:6]}-{i}.so")
    return PackageInfo(name, tuple(files))


def default_database() -> PackageDatabase:
    return PackageDatabase()
