"""The Puppet DSL frontend: lexer, parser, evaluator, catalog, graph."""

from repro.puppet.catalog import Catalog, CatalogResource
from repro.puppet.evaluator import (
    DEFAULT_FACTS,
    Evaluator,
    evaluate_manifest,
)
from repro.puppet.graph import compile_catalog
from repro.puppet.lexer import tokenize
from repro.puppet.parser import parse_manifest
from repro.puppet.values import RefValue, interpolate, to_display, truthy

__all__ = [
    "Catalog",
    "CatalogResource",
    "DEFAULT_FACTS",
    "Evaluator",
    "RefValue",
    "compile_catalog",
    "evaluate_manifest",
    "interpolate",
    "parse_manifest",
    "to_display",
    "tokenize",
    "truthy",
]
