"""Core resource representation shared by the frontend and the models.

A :class:`Resource` is a *primitive* Puppet resource after catalog
compilation: user-defined types have been substituted away, variables
interpolated, and defaults applied.  The resource compiler
(:mod:`repro.resources.compiler`) maps these to FS programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional

from repro.errors import ResourceModelError
from repro.fs import Expr, Path, dir_, ite, mkdir, pnot, seq


@dataclass(frozen=True)
class ResourceRef:
    """``Type['title']`` — how manifests name resources."""

    rtype: str
    title: str

    def __post_init__(self):
        object.__setattr__(self, "rtype", self.rtype.lower())

    def __str__(self) -> str:
        return f"{self.rtype.capitalize()}[{self.title!r}]"


@dataclass
class Resource:
    """A primitive resource instance: type, title, attribute map."""

    rtype: str
    title: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    virtual: bool = False
    exported: bool = False
    # Source span of the declaring manifest text (1-based; 0 = unknown).
    # Excluded from equality so span threading never changes verdicts.
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def __post_init__(self):
        self.rtype = self.rtype.lower()

    @property
    def ref(self) -> ResourceRef:
        return ResourceRef(self.rtype, self.title)

    def get(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    def get_str(self, name: str, default: Optional[str] = None) -> Optional[str]:
        value = self.attributes.get(name, default)
        if value is None:
            return None
        if isinstance(value, bool):
            return "true" if value else "false"
        return str(value)

    def get_bool(self, name: str, default: bool = False) -> bool:
        value = self.attributes.get(name)
        if value is None:
            return default
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            return value.strip().lower() in ("true", "yes", "1")
        return bool(value)

    def require_str(self, name: str) -> str:
        value = self.get_str(name)
        if value is None:
            raise ResourceModelError(
                f"{self.ref}: required attribute {name!r} is missing"
            )
        return value

    def __str__(self) -> str:
        return str(self.ref)


METAPARAMETERS = frozenset(
    {
        "before",
        "require",
        "notify",
        "subscribe",
        "alias",
        "noop",
        "stage",
        "tag",
        "loglevel",
        "audit",
        "schedule",
    }
)
"""Attributes consumed by the catalog, not by resource models."""


def ensure_directory_tree(
    paths: Iterable[Path], below: Optional[Path] = None
) -> Expr:
    """Emit guarded ``if (¬dir?(d)) mkdir(d)`` for every ancestor
    directory needed by ``paths``, parents before children.

    This is the *idempotent directory creation* idiom of §4.3 — the
    commutativity analysis recognizes exactly this shape and assigns the
    abstract value ``D``, letting packages that share ``/usr``-style
    trees commute.
    """
    dirs: set[Path] = set()
    for p in paths:
        for ancestor in p.ancestors():
            if ancestor.is_root:
                continue
            if below is not None and not below.is_ancestor_of(ancestor):
                if ancestor != below:
                    continue
            dirs.add(ancestor)
    steps = [
        guarded_mkdir(d) for d in sorted(dirs, key=lambda d: d.depth())
    ]
    return seq(*steps)


def guarded_mkdir(path: Path) -> Expr:
    """``if (¬dir?(p)) mkdir(p)`` — ensure a directory exists."""
    return ite(pnot(dir_(path)), mkdir(path))
