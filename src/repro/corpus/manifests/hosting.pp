# hosting — multi-site web hosting (§6 benchmark "hosting").
#
# Exercises user-defined types (one per hosted site), virtual user
# accounts, and a collector that realizes only the accounts this node
# actually needs.

define hosting::site ($port = 80) {
  file { "/srv/www/${title}":
    ensure  => directory,
    require => File['/srv/www'],
  }

  file { "/srv/www/${title}/index.html":
    ensure  => file,
    content => "<html><body><h1>${title}</h1><p>served on port ${port}</p></body></html>\n",
  }

  file { "/etc/apache2/sites-available/${title}.conf":
    ensure  => file,
    content => "<VirtualHost *:${port}>\n  ServerName ${title}\n  DocumentRoot /srv/www/${title}\n</VirtualHost>\n",
    require => Package['apache2'],
  }
}

class hosting {
  package { 'apache2':
    ensure => installed,
  }

  file { '/srv':
    ensure => directory,
  }

  file { '/srv/www':
    ensure => directory,
  }

  # Virtual accounts: the full catalog of hosting staff; only the
  # deploy account is realized on web nodes.
  @user { 'deploy':
    ensure     => present,
    managehome => true,
  }

  @user { 'dbadmin':
    ensure     => present,
    managehome => true,
  }

  User <| title == 'deploy' |>

  service { 'apache2':
    ensure    => running,
    enable    => true,
    require   => Package['apache2'],
  }
}

hosting::site { 'alpha.example.com': }

hosting::site { 'beta.example.com':
  port => 8080,
}

include hosting
