"""Per-resource idempotence rule (REH011 non-idempotent-resource).

The paper checks idempotence of the *whole manifest* with SAT (§5);
this rule is the lint-sized version: each resource's program is run
twice in a row, concretely, from a small family of initial states.
If the second run changes the filesystem the first run produced, the
resource is not idempotent in isolation — the usual culprit is an
unguarded operation (``creat``/``rm``/``mkdir`` without an existence
check)."""

from __future__ import annotations

from typing import Iterable

from repro.analysis.lint.diagnostics import Diagnostic, Severity
from repro.analysis.lint.engine import (
    LintContext,
    Rule,
    graph_checker,
    register_rule,
)
from repro.fs import eval_expr, is_error
from repro.testing.oracle import initial_state_family

#: States sampled per resource; the family's first entries (empty,
#: scaffold, converged) catch the common unguarded-operation shapes.
_MAX_STATES = 6

register_rule(
    Rule(
        id="REH011",
        name="non-idempotent-resource",
        severity=Severity.WARNING,
        summary="running a resource twice changes the filesystem again",
        description=(
            "Concretely evaluating the resource's filesystem program "
            "twice from the same initial state yields a different "
            "result than evaluating it once: the resource is not "
            "idempotent in isolation, so repeated Puppet runs keep "
            "mutating the host. Whole-manifest idempotence is decided "
            "by `rehearsal verify`."
        ),
    )
)


@graph_checker
def non_idempotent_resources(ctx: LintContext) -> Iterable[Diagnostic]:
    if not ctx.programs:
        return
    for node in sorted(ctx.programs, key=str):
        program = ctx.programs[node]
        states = initial_state_family(
            [program], max_states=_MAX_STATES, seed=0
        )
        for initial in states:
            once = eval_expr(program, initial)
            if is_error(once):
                continue
            twice = eval_expr(program, once)
            if is_error(twice) or twice != once:
                line, col = ctx.span_of(node)
                yield ctx.diag(
                    "REH011",
                    f"{node} is not idempotent: a second run from the "
                    f"state the first run produced "
                    + (
                        "fails"
                        if is_error(twice)
                        else "changes the filesystem again"
                    ),
                    line=line,
                    col=col,
                    resource=str(node),
                )
                break
