"""Eliminating resources (paper §4.4, "Eliminating Resources").

A determinism check is a conjunction of equivalence checks between all
valid permutations.  If a resource commutes with every resource that
may be scheduled *after* it in some permutation (its non-ancestors),
every permutation can be rewritten so that resource comes last, and
``e1; e ≡ e2; e  iff  e1 ≡ e2`` — so the resource can be dropped
entirely without changing the verdict.

Following the paper, elimination starts from the fringe (resources
nothing depends on) and repeats until a fixpoint, since removing a
child often unlocks its parents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set, Tuple

import networkx as nx

from repro.analysis.commutativity import Footprint, footprint, footprints_commute
from repro.fs import syntax as fx

NodeId = Hashable


@dataclass
class EliminationReport:
    eliminated: List[NodeId] = field(default_factory=list)
    nodes_before: int = 0
    nodes_after: int = 0


def eliminate_resources(
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
) -> Tuple["nx.DiGraph", EliminationReport]:
    """Drop verdict-irrelevant resources.

    ``graph`` edges point prerequisite → dependent.  Returns a new
    graph (``programs`` is not modified; dropped nodes simply no longer
    appear in the graph).
    """
    work = graph.copy()
    prints: Dict[NodeId, Footprint] = {
        n: footprint(programs[n]) for n in work.nodes
    }
    report = EliminationReport(nodes_before=work.number_of_nodes())

    changed = True
    while changed:
        changed = False
        # Fringe: nothing depends on these.
        for node in [n for n in work.nodes if work.out_degree(n) == 0]:
            ancestors = nx.ancestors(work, node)
            others = [
                m for m in work.nodes if m != node and m not in ancestors
            ]
            if all(
                footprints_commute(prints[node], prints[m]) for m in others
            ):
                work.remove_node(node)
                report.eliminated.append(node)
                changed = True
    report.nodes_after = work.number_of_nodes()
    return work, report
