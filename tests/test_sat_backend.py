"""The pluggable solver-backend layer: configs, spec parsing,
portfolio racing, the external-solver bridge, and the query-layer
plumbing (including the deprecated keyword shims)."""

import os
import random
import sys
import warnings
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.logic import TermBank
from repro.sat import (
    DEFAULT_CONFIG,
    ExternalBackend,
    PortfolioBackend,
    Solver,
    SolverBackend,
    SolverConfig,
    backend_label,
    brute_force_solve,
    check_assignment,
    default_portfolio,
    find_external_solver,
    make_solver,
    parse_backend_spec,
    solve_cnf,
)
from repro.sat import portfolio as portfolio_mod
from repro.sat.backend import solver_counters
from repro.sat.external import parse_solver_output
from repro.smt.query import IncrementalQuery, Query


def random_instance(seed, num_vars=8, num_clauses=30):
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        clause = [
            rng.choice([-1, 1]) * rng.randint(1, num_vars)
            for _ in range(width)
        ]
        clauses.append(clause)
    return clauses


class TestSolverConfig:
    def test_default_is_reference(self):
        assert DEFAULT_CONFIG == SolverConfig()
        assert DEFAULT_CONFIG.restart_policy == "luby"
        assert DEFAULT_CONFIG.seed == 0

    def test_rejects_unknown_restart_policy(self):
        with pytest.raises(ValueError, match="restart policy"):
            SolverConfig(restart_policy="inner-outer")

    def test_rejects_bad_restart_unit(self):
        with pytest.raises(ValueError, match="restart_unit"):
            SolverConfig(restart_unit=0)

    def test_rejects_decay_out_of_range(self):
        with pytest.raises(ValueError, match="decay"):
            SolverConfig(decay=1.0)
        with pytest.raises(ValueError, match="decay"):
            SolverConfig(decay=0.0)

    def test_frozen_and_hashable(self):
        config = SolverConfig(seed=3)
        with pytest.raises(Exception):
            config.seed = 4
        assert len({config, SolverConfig(seed=3)}) == 1

    def test_default_portfolio_shape(self):
        ladder = default_portfolio(4)
        assert len(ladder) == 4
        assert ladder[0] == DEFAULT_CONFIG
        assert len({c.name for c in ladder}) == 4

    def test_default_portfolio_extends_past_ladder(self):
        big = default_portfolio(9)
        assert len(big) == 9
        assert len({c.name for c in big}) == 9
        assert big[0] == DEFAULT_CONFIG

    def test_default_portfolio_rejects_zero(self):
        with pytest.raises(ValueError):
            default_portfolio(0)


class TestConfiguredSolver:
    """Configs change heuristics, never answers — and the default
    config is byte-identical to the historical solver."""

    @pytest.mark.parametrize("seed", range(6))
    def test_default_config_is_bit_identical(self, seed):
        clauses = random_instance(seed)
        plain = Solver()
        configured = Solver(config=DEFAULT_CONFIG)
        for solver in (plain, configured):
            for clause in clauses:
                solver.add_clause(clause)
        r1 = plain.solve()
        r2 = configured.solve()
        assert r1.sat == r2.sat
        assert r1.assignment == r2.assignment
        assert plain.conflicts == configured.conflicts
        assert plain.decisions == configured.decisions

    @pytest.mark.parametrize("config", default_portfolio(6)[1:])
    def test_every_ladder_member_is_sound(self, config):
        for seed in range(8):
            clauses = random_instance(seed, num_vars=7, num_clauses=24)
            solver = Solver(config=config)
            for clause in clauses:
                solver.add_clause(clause)
            result = solver.solve()
            expected = brute_force_solve(clauses, 7) is not None
            assert result.sat == expected, (config.name, seed)
            if result.sat:
                assert check_assignment(clauses, result.assignment)

    def test_seed_jitter_is_deterministic(self):
        clauses = random_instance(5)
        runs = []
        for _ in range(2):
            solver = Solver(config=SolverConfig(seed=7))
            for clause in clauses:
                solver.add_clause(clause)
            result = solver.solve()
            runs.append((result.sat, tuple(sorted(result.assignment.items()))))
        assert runs[0] == runs[1]


class TestParseBackendSpec:
    def test_cdcl_returns_plain_solver_factory(self):
        backend = parse_backend_spec("cdcl")()
        assert isinstance(backend, Solver)
        assert isinstance(backend, SolverBackend)

    def test_cdcl_with_portfolio_count_races(self):
        backend = parse_backend_spec("cdcl", portfolio=3)()
        assert isinstance(backend, PortfolioBackend)
        assert len(backend.configs) == 3

    def test_portfolio_spec_with_count(self):
        backend = parse_backend_spec("portfolio:2")()
        assert isinstance(backend, PortfolioBackend)
        assert len(backend.configs) == 2

    def test_portfolio_spec_defaults_to_four(self):
        assert len(parse_backend_spec("portfolio")().configs) == 4

    def test_bare_portfolio_takes_argument_default(self):
        assert len(parse_backend_spec("portfolio", portfolio=5)().configs) == 5

    def test_bare_portfolio_treats_one_as_unset(self):
        """The CLI's --portfolio default is 1 (no racing); an explicit
        '--solver portfolio' must still build the documented 4-member
        portfolio, matching what backend_label reports for the row."""
        backend = parse_backend_spec("portfolio", portfolio=1)()
        assert len(backend.configs) == 4
        assert backend_label("portfolio", portfolio=1) == "portfolio:4"

    def test_explicit_portfolio_one_is_single_member(self):
        assert len(parse_backend_spec("portfolio:1")().configs) == 1

    @pytest.mark.parametrize(
        "spec",
        ["cdcl:9", "portfolio:x", "portfolio:0", "dpll", "external:/no/such/solver"],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_backend_spec(spec)

    def test_invalid_counts_raise(self):
        with pytest.raises(ValueError, match="workers"):
            parse_backend_spec("cdcl", workers=0)
        with pytest.raises(ValueError, match="portfolio"):
            parse_backend_spec("cdcl", portfolio=0)

    def test_external_auto_without_solvers_names_candidates(self, monkeypatch):
        monkeypatch.setenv("PATH", "")
        with pytest.raises(ValueError, match="kissat"):
            parse_backend_spec("external:auto")

    def test_backend_label(self):
        assert backend_label() == "cdcl"
        assert backend_label(portfolio=3) == "portfolio:3"
        assert backend_label("portfolio") == "portfolio:4"
        assert backend_label("portfolio:2") == "portfolio:2"
        assert backend_label(portfolio=2, solver_workers=4) == "portfolio:2+cube:4"
        assert backend_label(solver_workers=2) == "cdcl+cube:2"
        assert backend_label("external:kissat") == "external:kissat"

    def test_solver_counters_shape(self):
        counters = solver_counters(make_solver())
        assert set(counters) == {
            "conflicts",
            "decisions",
            "propagations",
            "restarts",
        }


class TestPortfolioBackend:
    def test_needs_configs_and_workers(self):
        with pytest.raises(ValueError):
            PortfolioBackend(())
        with pytest.raises(ValueError):
            PortfolioBackend(default_portfolio(2), workers=0)

    def test_satisfies_protocol(self):
        assert isinstance(
            PortfolioBackend(default_portfolio(2)), SolverBackend
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_sequential_solver_exactly(self, seed):
        """On corpus-scale instances the reference member answers in
        round 0, so the portfolio is byte-identical to a plain
        solver — including incremental state across calls."""
        clauses = random_instance(seed, num_vars=9, num_clauses=35)
        plain = Solver()
        raced = PortfolioBackend(default_portfolio(3))
        for backend in (plain, raced):
            for clause in clauses:
                backend.add_clause(clause)
        for assumptions in ([], [1], [-2, 3], [4, -5]):
            r1 = plain.solve(assumptions)
            r2 = raced.solve(assumptions)
            assert r1.sat == r2.sat
            assert r1.assignment == r2.assignment
            assert r1.core == r2.core
        assert plain.conflicts == raced.conflicts

    def test_budget_racing_still_answers(self, monkeypatch):
        """With a starvation-level round budget the reference member
        overruns and the diversified helpers race; escalation must
        still land the right verdict, identically across runs."""
        monkeypatch.setattr(portfolio_mod, "FIRST_ROUND_BUDGET", 1)
        outcomes = []
        for _ in range(2):
            clauses = random_instance(3, num_vars=9, num_clauses=40)
            backend = PortfolioBackend(default_portfolio(4))
            for clause in clauses:
                backend.add_clause(clause)
            result = backend.solve()
            expected = brute_force_solve(clauses, 9) is not None
            assert result.sat == expected
            if result.sat:
                assert check_assignment(clauses, result.assignment)
            outcomes.append(
                (result.sat, tuple(sorted(result.assignment.items())))
            )
        assert outcomes[0] == outcomes[1]

    def test_preprocessing_member_reconstructs_models(self, monkeypatch):
        monkeypatch.setattr(portfolio_mod, "FIRST_ROUND_BUDGET", 1)
        # Only the reference and the preprocess-heavy member: any SAT
        # answer from the helper must decode over original variables.
        configs = (DEFAULT_CONFIG, default_portfolio(4)[3])
        assert configs[1].preprocess is True
        for seed in range(4):
            clauses = random_instance(seed, num_vars=8, num_clauses=28)
            backend = PortfolioBackend(configs)
            for clause in clauses:
                backend.add_clause(clause)
            result = backend.solve(assumptions=[2])
            expected = solve_cnf(clauses + [[2]])
            assert result.sat == expected.sat
            if result.sat:
                assert check_assignment(clauses, result.assignment)
                assert result.assignment.get(2, False) is True

    def test_pool_path_matches_serial(self, monkeypatch):
        monkeypatch.setattr(portfolio_mod, "FIRST_ROUND_BUDGET", 1)
        clauses = random_instance(2, num_vars=8, num_clauses=30)
        serial = PortfolioBackend(default_portfolio(3), workers=1)
        pooled = PortfolioBackend(default_portfolio(3), workers=2)
        try:
            for backend in (serial, pooled):
                for clause in clauses:
                    backend.add_clause(clause)
            r1 = serial.solve()
            r2 = pooled.solve()
            assert r1.sat == r2.sat
            assert r1.assignment == r2.assignment
        finally:
            pooled.close()

    def test_max_conflicts_still_enforced(self):
        clauses = random_instance(1, num_vars=10, num_clauses=45)
        backend = PortfolioBackend(default_portfolio(2))
        for clause in clauses:
            backend.add_clause(clause)
        with pytest.raises(SolverError):
            backend.solve(max_conflicts=0)

    def test_max_conflicts_bounds_total_portfolio_effort(self):
        """When the reference member exhausts the caller's whole
        max_conflicts budget, the backend must raise like the
        sequential solver would — not hand helpers the full round
        budget and answer anyway."""
        clauses = random_instance(3, num_vars=12, num_clauses=50)
        plain = Solver()
        for clause in clauses:
            plain.add_clause(clause)
        try:
            plain.solve(max_conflicts=1)
        except SolverError:
            pass
        else:
            pytest.skip("instance solved within one conflict")
        backend = PortfolioBackend(default_portfolio(4))
        for clause in clauses:
            backend.add_clause(clause)
        with pytest.raises(SolverError, match="budget"):
            backend.solve(max_conflicts=1)

    def test_helper_budget_clamped_to_remaining(self, monkeypatch):
        """Helpers race only with whatever budget is left after the
        reference's attempt, and exhausted helper rounds charge the
        budget; with a tiny cap the call raises instead of burning
        K * round-budget conflicts."""
        monkeypatch.setattr(portfolio_mod, "FIRST_ROUND_BUDGET", 1)
        seen_budgets = []
        real_attempt = portfolio_mod._helper_attempt

        def spy(config, clauses, num_vars, assumptions, budget):
            seen_budgets.append(budget)
            return real_attempt(
                config, clauses, num_vars, assumptions, budget
            )

        monkeypatch.setattr(portfolio_mod, "_helper_attempt", spy)
        clauses = random_instance(3, num_vars=12, num_clauses=50)
        backend = PortfolioBackend(default_portfolio(3))
        for clause in clauses:
            backend.add_clause(clause)
        cap = 5
        try:
            backend.solve(max_conflicts=cap)
        except SolverError:
            pass
        assert all(b <= cap for b in seen_budgets)


class TestParseSolverOutput:
    def test_competition_sat(self):
        verdict, model = parse_solver_output(
            "c comment\ns SATISFIABLE\nv 1 -2 3\nv -4 0\n"
        )
        assert verdict is True
        assert model == {1: True, 2: False, 3: True, 4: False}

    def test_competition_unsat(self):
        verdict, model = parse_solver_output("s UNSATISFIABLE\n")
        assert verdict is False
        assert model == {}

    def test_minisat_output_file_shape(self):
        verdict, model = parse_solver_output("SAT\n1 -2 3 0\n")
        assert verdict is True
        assert model == {1: True, 2: False, 3: True}
        assert parse_solver_output("UNSAT\n")[0] is False

    def test_no_verdict(self):
        assert parse_solver_output("c nothing to see\n")[0] is None


@pytest.fixture
def fake_solver(tmp_path):
    """A real subprocess speaking the SAT-competition protocol, backed
    by this repo's own solver — exercises the DIMACS round-trip and
    output parsing without any system solver installed."""
    src = Path(__file__).resolve().parents[1] / "src"
    body = (
        "import sys\n"
        f"sys.path.insert(0, {str(src)!r})\n"
        "from repro.sat.dimacs import read_dimacs\n"
        "from repro.sat.solver import solve_cnf\n"
        "with open(sys.argv[1]) as handle:\n"
        "    clauses, num_vars = read_dimacs(handle)\n"
        "result = solve_cnf(clauses)\n"
        "if result.sat:\n"
        "    print('s SATISFIABLE')\n"
        "    lits = [v if val else -v for v, val in"
        " sorted(result.assignment.items())]\n"
        "    print('v ' + ' '.join(map(str, lits)) + ' 0')\n"
        "    sys.exit(10)\n"
        "print('s UNSATISFIABLE')\n"
        "sys.exit(20)\n"
    )
    script = tmp_path / "fakesat.py"
    script.write_text(body)
    wrapper = tmp_path / "fakesat"
    wrapper.write_text(
        f"#!/bin/sh\nexec {sys.executable} {script} \"$@\"\n"
    )
    wrapper.chmod(0o755)
    return str(wrapper)


class TestExternalBackend:
    def test_sat_with_model(self, fake_solver):
        backend = ExternalBackend(fake_solver)
        backend.add_clause([1, 2])
        backend.add_clause([-1])
        result = backend.solve()
        assert result.sat
        assert result.assignment[2] is True
        assert result.assignment.get(1, False) is False

    def test_unsat(self, fake_solver):
        backend = ExternalBackend(fake_solver)
        backend.add_clause([1])
        backend.add_clause([-1])
        assert not backend.solve().sat

    def test_core_minimization(self, fake_solver):
        backend = ExternalBackend(fake_solver)
        backend.add_clause([-1])
        result = backend.solve(assumptions=[1, 2, 3])
        assert not result.sat
        assert result.core == [1]

    def test_empty_clause_short_circuits(self, fake_solver):
        backend = ExternalBackend(fake_solver)
        backend.add_clause([])
        assert not backend.solve().sat
        assert backend.clause_database() == [[]]

    def test_satisfies_protocol_with_zero_counters(self, fake_solver):
        backend = ExternalBackend(fake_solver)
        assert isinstance(backend, SolverBackend)
        assert solver_counters(backend) == {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
        }

    def test_spec_resolves_explicit_path(self, fake_solver):
        factory = parse_backend_spec(f"external:{fake_solver}")
        backend = factory()
        backend.add_clause([1])
        assert backend.solve().sat

    def test_missing_binary_is_solver_error(self, tmp_path):
        backend = ExternalBackend(str(tmp_path / "gone"))
        backend.add_clause([1])
        with pytest.raises(SolverError):
            backend.solve()

    def test_find_external_solver_path_form(self, fake_solver):
        assert find_external_solver(fake_solver) == fake_solver
        assert find_external_solver(fake_solver + ".nope") is None


@pytest.mark.skipif(
    find_external_solver() is None,
    reason="no SAT-competition solver (kissat/cadical/minisat) on PATH",
)
class TestRealExternalSolver:
    def test_agrees_with_reference(self):
        backend = parse_backend_spec("external:auto")()
        for seed in range(3):
            clauses = random_instance(seed, num_vars=6, num_clauses=18)
            fresh = ExternalBackend(backend.path)
            for clause in clauses:
                fresh.add_clause(clause)
            result = fresh.solve()
            assert result.sat == solve_cnf(clauses).sat
            if result.sat:
                assert check_assignment(clauses, result.assignment)


class TestQueryBackendPlumbing:
    def test_query_accepts_backend_factory(self):
        bank = TermBank()
        made = []

        def factory():
            made.append(True)
            return Solver()

        q = Query(bank, backend=factory)
        q.assert_term(bank.var("a"))
        result = q.check()
        assert result.sat and made

    def test_incremental_query_routes_through_backend(self):
        bank = TermBank()
        backend = PortfolioBackend(default_portfolio(2))
        q = IncrementalQuery(bank, backend=lambda: backend)
        assert q.solver is backend
        q.assert_term(bank.or_(bank.var("a"), bank.var("b")))
        selector = q.add_selector("only$b", bank.not_(bank.var("a")))
        result = q.check(assumptions=[selector])
        assert result.sat
        assert result.named_model["b"] is True

    def test_use_preprocessing_keyword_warns_but_works(self):
        bank = TermBank()
        with pytest.warns(DeprecationWarning, match="use_preprocessing"):
            q = Query(bank, use_preprocessing=False)
        assert q.preprocessing is False
        assert q.use_preprocessing is False
        with pytest.warns(DeprecationWarning):
            iq = IncrementalQuery(bank, use_preprocessing=True)
        assert iq.preprocessing is True

    def test_both_spellings_together_rejected(self):
        bank = TermBank()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(TypeError):
                Query(bank, preprocessing=True, use_preprocessing=True)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**20))
def test_portfolio_members_agree_with_brute_force(seed):
    clauses = random_instance(seed, num_vars=6, num_clauses=20)
    expected = brute_force_solve(clauses, 6) is not None
    for config in default_portfolio(3):
        solver = Solver(config=config)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve().sat == expected
