"""Execution tracing: run an FS program step by step and record what
happened — the diagnostic companion to the counterexamples the
analyses produce ("*why* does this order fail on that machine?").

A trace is a list of :class:`TraceStep` entries, one per primitive
operation actually executed (conditionals record which branch was
taken).  ``explain_order`` traces a whole resource sequence with
per-resource boundaries, which the CLI/report layer renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.fs import syntax as fx
from repro.fs.filesystem import FileSystem
from repro.fs.pretty import expr_to_str, pred_to_str
from repro.fs.semantics import ERROR, eval_expr, eval_pred


@dataclass
class TraceStep:
    """One executed primitive operation (or taken branch)."""

    description: str
    ok: bool
    detail: str = ""


@dataclass
class Trace:
    steps: List[TraceStep] = field(default_factory=list)
    final: Optional[FileSystem] = None  # None = error

    @property
    def ok(self) -> bool:
        return self.final is not None

    def render(self) -> str:
        lines = []
        for step in self.steps:
            mark = "ok " if step.ok else "ERR"
            line = f"  [{mark}] {step.description}"
            if step.detail:
                line += f"  ({step.detail})"
            lines.append(line)
        lines.append(
            "  => success" if self.ok else "  => execution failed here"
        )
        return "\n".join(lines)


def trace_expr(expr: fx.Expr, fs: FileSystem) -> Trace:
    """Execute ``expr`` on ``fs``, recording each primitive step."""
    trace = Trace()
    final = _run(expr, fs, trace)
    trace.final = None if final is ERROR else final
    return trace


def _run(expr: fx.Expr, fs, trace: Trace):
    if fs is ERROR:
        return ERROR
    if isinstance(expr, fx.Id):
        return fs
    if isinstance(expr, fx.Err):
        trace.steps.append(TraceStep("err", ok=False))
        return ERROR
    if isinstance(expr, (fx.Mkdir, fx.Creat, fx.Rm, fx.Cp)):
        out = eval_expr(expr, fs)
        ok = out is not ERROR
        detail = "" if ok else _failure_reason(expr, fs)
        trace.steps.append(
            TraceStep(expr_to_str(expr), ok=ok, detail=detail)
        )
        return out
    if isinstance(expr, fx.Seq):
        intermediate = _run(expr.first, fs, trace)
        if intermediate is ERROR:
            return ERROR
        return _run(expr.second, intermediate, trace)
    if isinstance(expr, fx.If):
        taken = eval_pred(expr.pred, fs)
        trace.steps.append(
            TraceStep(
                f"if ({pred_to_str(expr.pred)}) -> "
                f"{'then' if taken else 'else'}",
                ok=True,
            )
        )
        branch = expr.then_branch if taken else expr.else_branch
        return _run(branch, fs, trace)
    raise TypeError(f"unknown expression: {expr!r}")


def _failure_reason(expr: fx.Expr, fs: FileSystem) -> str:
    """Human-readable precondition diagnosis for a failed primitive."""
    if isinstance(expr, (fx.Mkdir, fx.Creat)):
        parent = expr.path.parent()
        if not fs.is_dir(parent):
            return f"parent {parent} is not a directory"
        if fs.exists(expr.path):
            return f"{expr.path} already exists"
        return "precondition failed"
    if isinstance(expr, fx.Rm):
        if not fs.exists(expr.path):
            return f"{expr.path} does not exist"
        if fs.is_dir(expr.path) and fs.has_children(expr.path):
            return f"{expr.path} is a non-empty directory"
        return "precondition failed"
    if isinstance(expr, fx.Cp):
        if not fs.is_file(expr.src):
            return f"source {expr.src} is not a file"
        if fs.exists(expr.dst):
            return f"destination {expr.dst} already exists"
        parent = expr.dst.parent()
        if not fs.is_dir(parent):
            return f"destination parent {parent} is not a directory"
        return "precondition failed"
    return ""


def explain_order(
    order: Sequence[Hashable],
    programs: Dict[Hashable, fx.Expr],
    fs: FileSystem,
) -> str:
    """Trace a full resource sequence, labeling each resource, and
    stop at the first failure — the ``--explain`` narrative."""
    lines: List[str] = []
    current = fs
    for node in order:
        lines.append(f"{node}:")
        trace = trace_expr(programs[node], current)
        lines.append(trace.render())
        if not trace.ok:
            lines.append(f"{node} FAILED — remaining resources not applied")
            return "\n".join(lines)
        current = trace.final
    lines.append("all resources applied successfully")
    return "\n".join(lines)
