"""SAT solving substrate: CDCL solver, DIMACS I/O, brute-force oracle,
and the pluggable backend layer (portfolio racing, cube-and-conquer
scheduling, external SAT-competition solvers — see docs/solver.md)."""

from repro.sat.backend import (
    DEFAULT_CONFIG,
    SolverBackend,
    SolverConfig,
    backend_label,
    default_portfolio,
    make_solver,
    parse_backend_spec,
)
from repro.sat.brute import brute_force_solve, check_assignment, count_models
from repro.sat.cube import Cube, merge_stats, schedule, split_frontier
from repro.sat.dimacs import dimacs_to_string, read_dimacs, write_dimacs
from repro.sat.external import ExternalBackend, find_external_solver
from repro.sat.portfolio import PortfolioBackend
from repro.sat.solver import SolveResult, Solver, solve_cnf

__all__ = [
    "Cube",
    "DEFAULT_CONFIG",
    "ExternalBackend",
    "PortfolioBackend",
    "SolveResult",
    "Solver",
    "SolverBackend",
    "SolverConfig",
    "backend_label",
    "brute_force_solve",
    "check_assignment",
    "count_models",
    "default_portfolio",
    "dimacs_to_string",
    "find_external_solver",
    "make_solver",
    "merge_stats",
    "parse_backend_spec",
    "read_dimacs",
    "schedule",
    "solve_cnf",
    "split_frontier",
    "write_dimacs",
]
