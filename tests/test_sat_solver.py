"""Tests for the CDCL SAT solver, cross-checked against brute force."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    Solver,
    brute_force_solve,
    check_assignment,
    count_models,
    solve_cnf,
)


class TestBasics:
    def test_empty_instance_is_sat(self):
        assert solve_cnf([]).sat

    def test_unit(self):
        result = solve_cnf([[1]])
        assert result.sat
        assert result.assignment[1] is True

    def test_conflicting_units(self):
        assert not solve_cnf([[1], [-1]]).sat

    def test_simple_implication_chain(self):
        # 1 -> 2 -> 3, with 1 forced and -3 forced: UNSAT.
        clauses = [[1], [-1, 2], [-2, 3], [-3]]
        assert not solve_cnf(clauses).sat

    def test_model_satisfies(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        result = solve_cnf(clauses)
        assert result.sat
        assert check_assignment(clauses, result.assignment)

    def test_duplicate_literals_are_merged(self):
        assert solve_cnf([[1, 1, 1]]).sat

    def test_tautology_dropped(self):
        assert solve_cnf([[1, -1]]).sat
        # A tautology must not force anything.
        result = solve_cnf([[1, -1], [-1]])
        assert result.sat

    def test_empty_clause_unsat(self):
        assert not solve_cnf([[1], []]).sat

    def test_zero_literal_rejected(self):
        from repro.errors import SolverError

        solver = Solver()
        with pytest.raises(SolverError):
            solver.add_clause([0])


class TestStructured:
    def test_pigeonhole_3_into_2_unsat(self):
        assert not solve_cnf(_pigeonhole(3, 2)).sat

    def test_pigeonhole_4_into_3_unsat(self):
        assert not solve_cnf(_pigeonhole(4, 3)).sat

    def test_pigeonhole_3_into_3_sat(self):
        result = solve_cnf(_pigeonhole(3, 3))
        assert result.sat

    def test_php_5_4(self):
        # Big enough to force real conflict analysis and restarts.
        assert not solve_cnf(_pigeonhole(5, 4)).sat

    def test_xor_chain_sat(self):
        clauses = []
        n = 10
        for i in range(1, n):
            # x_i xor x_{i+1}
            clauses.append([i, i + 1])
            clauses.append([-i, -(i + 1)])
        result = solve_cnf(clauses)
        assert result.sat
        assert check_assignment(clauses, result.assignment)

    def test_at_most_one_block(self):
        n = 8
        clauses = [[i for i in range(1, n + 1)]]
        for i in range(1, n + 1):
            for j in range(i + 1, n + 1):
                clauses.append([-i, -j])
        result = solve_cnf(clauses)
        assert result.sat
        assert sum(result.assignment.get(i, False) for i in range(1, n + 1)) == 1


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = Solver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1])
        assert result.sat
        assert result.assignment[2] is True

    def test_contradictory_assumption(self):
        solver = Solver()
        solver.add_clause([1])
        assert not solver.solve(assumptions=[-1]).sat

    def test_solver_reusable_after_assumptions(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert not solver.solve(assumptions=[-1, -2]).sat
        assert solver.solve().sat


def _pigeonhole(pigeons: int, holes: int):
    """var(p, h) = p * holes + h + 1."""
    clauses = []
    for p in range(pigeons):
        clauses.append([p * holes + h + 1 for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-(p1 * holes + h + 1), -(p2 * holes + h + 1)])
    return clauses


def _random_cnf(rng: random.Random, num_vars: int, num_clauses: int):
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        vars_ = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in vars_])
    return clauses


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_instances_match_oracle(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 9)
        num_clauses = rng.randint(2, int(4.5 * num_vars))
        clauses = _random_cnf(rng, num_vars, num_clauses)
        expected = brute_force_solve(clauses, num_vars)
        result = solve_cnf(clauses, num_vars)
        assert result.sat == (expected is not None)
        if result.sat:
            assert check_assignment(clauses, result.assignment)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_random_instances(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 8)
        clauses = _random_cnf(rng, num_vars, rng.randint(1, 30))
        expected = brute_force_solve(clauses, num_vars)
        result = solve_cnf(clauses, num_vars)
        assert result.sat == (expected is not None)
        if result.sat:
            assert check_assignment(clauses, result.assignment)


class TestOracleHelpers:
    def test_count_models(self):
        # x1 or x2 over 2 vars has 3 models.
        assert count_models([[1, 2]], 2) == 3

    def test_brute_force_limit(self):
        with pytest.raises(ValueError):
            brute_force_solve([[1]], 30)
