#!/usr/bin/env python3
"""Regenerate every figure of the paper's §6 as text tables.

This is the standalone companion to the pytest-benchmark suite: it
prints the same rows/series the paper plots, suitable for pasting into
EXPERIMENTS.md.

Run:  python benchmarks/run_figures.py [--timeout SECONDS] [--smoke]

``--smoke`` runs a seconds-long subset (used by CI): Fig. 11a over the
whole corpus, the time figures over two representative benchmarks, and
Fig. 13 at small n — enough to catch a broken corpus or harness
without paying for the full sweep.
"""

from __future__ import annotations

import argparse

from repro.bench.harness import (
    BENCHMARK_NAMES,
    batch_cache_rows,
    batch_throughput_rows,
    fig11a_rows,
    fig11b_rows,
    fig11c_rows,
    fig12_rows,
    fig13_deterministic_rows,
    fig13_rows,
    render_rows,
    verdict_rows,
)

SMOKE_NAMES = ("ntp-nondet", "ntp-fixed")


def print_figures(timeout: float, smoke: bool) -> None:
    names = SMOKE_NAMES if smoke else tuple(BENCHMARK_NAMES)
    subset = " (smoke subset)" if smoke else ""

    print(
        render_rows(
            "Fig. 11a — written paths per state (pruning off / on)",
            ["benchmark", "no pruning", "pruning"],
            fig11a_rows(),
        )
    )
    print()
    print(
        render_rows(
            f"Fig. 11b{subset} — determinacy time, commutativity on "
            "(pruning off / on)",
            ["benchmark", "no pruning", "pruning"],
            fig11b_rows(timeout=timeout, names=names),
        )
    )
    print()
    print(
        render_rows(
            f"Fig. 11c{subset} — determinacy time, §4.4 passes off "
            "(commutativity off / on)",
            ["benchmark", "no commutativity", "commutativity"],
            fig11c_rows(timeout=timeout, names=names),
        )
    )
    if not smoke:
        print()
        print(
            render_rows(
                "Fig. 12 — idempotence-check time",
                ["benchmark", "time"],
                fig12_rows(),
            )
        )
    print()
    print(
        render_rows(
            f"Fig. 13{subset} — n conflicting writes (non-deterministic: "
            "early SAT model)",
            ["n", "time"],
            fig13_rows(ns=(2, 3) if smoke else (2, 3, 4, 5, 6), timeout=timeout),
        )
    )
    if not smoke:
        print()
        print(
            render_rows(
                "Fig. 13 — deterministic variant (full UNSAT proof)",
                ["n", "time"],
                fig13_deterministic_rows(ns=(2, 3, 4, 5), timeout=timeout),
            )
        )
        print()
        print(
            render_rows(
                '§6 "Bugs found" — verdicts',
                ["benchmark", "deterministic", "idempotent (of fix)"],
                [
                    (name, "yes" if det else "NO", "yes" if idem else "NO")
                    for name, det, idem in verdict_rows()
                ],
            )
        )
    print()
    worker_counts = (1, 2) if smoke else (1, 2, 4)
    print(
        render_rows(
            f"Batch throughput{subset} — corpus via repro.service, "
            "cache off (speedup needs >1 core)",
            ["workers", "time", "speedup"],
            [
                (workers, seconds, f"{speedup:.2f}x")
                for workers, seconds, speedup in batch_throughput_rows(
                    worker_counts=worker_counts, names=names
                )
            ],
        )
    )
    print()
    print(
        render_rows(
            f"Verdict cache{subset} — cold vs. warm batch run",
            ["run", "time", "solver time"],
            batch_cache_rows(names=names),
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--timeout",
        type=float,
        default=20.0,
        help="per-configuration budget in seconds (paper: 600)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast subset for CI: Fig. 11a plus two benchmarks",
    )
    args = parser.parse_args()
    print_figures(args.timeout, args.smoke)


if __name__ == "__main__":
    main()
