"""FS model for the ``user`` resource type (§3.3 "Other resource types").

A user account is a record in the account database, modeled as a file
``/etc/users/<name>`` with unique content.  ``managehome => true``
additionally creates ``/home/<name>`` — the paper notes "a user account
may need the /home directory to be present", and the benchmark suite
contains a real bug where ssh keys lacked a dependency on the user
that creates the home directory.
"""

from __future__ import annotations

from repro.errors import ResourceModelError
from repro.fs import (
    ERR,
    Expr,
    ID,
    Path,
    creat,
    emptydir_,
    file_,
    ite,
    mkdir,
    none_,
    rm,
    seq,
)
from repro.resources.base import Resource, ensure_directory_tree, guarded_mkdir

USERS_ROOT = Path.of("/etc/users")
HOME_ROOT = Path.of("/home")


def account_path(name: str) -> Path:
    return USERS_ROOT.child(name)


def home_path(name: str) -> Path:
    return HOME_ROOT.child(name)


def compile_user(resource: Resource, context) -> Expr:
    name = resource.get_str("name") or resource.title
    ensure = (resource.get_str("ensure") or "present").lower()
    managehome = resource.get_bool("managehome")
    account = account_path(name)
    home = home_path(name)
    if ensure == "present":
        steps = [
            ensure_directory_tree([account]),
            ite(file_(account), ID, creat(account, f"user:{name}")),
        ]
        if managehome:
            # Ensured unconditionally: an existing account with
            # managehome implies the home directory exists (same
            # consistency argument as the package model).
            steps.append(ensure_directory_tree([home]))
            steps.append(guarded_mkdir(home))
        return seq(*steps)
    if ensure == "absent":
        remove_home = (
            ite(emptydir_(home), rm(home)) if managehome else ID
        )
        return ite(
            file_(account),
            seq(rm(account), remove_home),
            ID,
        )
    raise ResourceModelError(
        f"{resource.ref}: unsupported ensure => {ensure!r}"
    )
