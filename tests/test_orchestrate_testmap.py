"""Dependency-aware test selection: scanner, map, selector, drift.

Two layers: synthetic throwaway projects exercise the scanner and the
selection rules in isolation; the real-repo tests pin the acceptance
contract — the committed ``tests/testmap.json`` is fresh, and editing
the shrinker selects a small sound subset of the suite.
"""

from pathlib import Path

import pytest

from repro.testing.orchestrate import testmap as tm

REPO_ROOT = Path(__file__).resolve().parent.parent
MAP_PATH = REPO_ROOT / "tests" / "testmap.json"


def write_project(root: Path, files: dict) -> None:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf8")


BASE_PROJECT = {
    "src/pkg/__init__.py": "",
    "src/pkg/core.py": "VALUE = 1\n",
    "src/pkg/extra.py": "from pkg import core\n",
    "src/pkg/leaf.py": "LEAF = True\n",
    "tests/test_core.py": "import pkg.core\n",
    "tests/test_extra.py": "import pkg.extra\n",
    "tests/conftest.py": "",
}


@pytest.fixture
def project(tmp_path):
    write_project(tmp_path, BASE_PROJECT)
    return tmp_path


class TestScanner:
    def test_import_forms(self):
        scan = tm.scan_source(
            "src/x.py",
            "import a.b\n"
            "from c import d, e\n"
            "def f():\n"
            "    from .g import h\n"
            "import importlib\n"
            "importlib.import_module('i.j')\n",
        )
        assert ("import", "a.b") in scan.specs
        assert ("from", 0, "c", ("d", "e")) in scan.specs
        assert ("from", 1, "g", ("h",)) in scan.specs
        assert ("import", "i.j") in scan.specs
        assert not scan.dynamic

    def test_non_constant_import_is_dynamic(self):
        scan = tm.scan_source(
            "src/x.py", "import importlib\nimportlib.import_module(n)\n"
        )
        assert scan.dynamic

    def test_lazy_exports_table_clears_dynamic(self):
        scan = tm.scan_source(
            "src/pkg/__init__.py",
            "from importlib import import_module\n"
            '_LAZY_EXPORTS = {"Thing": "pkg.impl"}\n'
            "def __getattr__(name):\n"
            "    return import_module(_LAZY_EXPORTS[name])\n",
        )
        assert not scan.dynamic
        assert scan.lazy_exports == (("Thing", "pkg.impl"),)

    def test_unparseable_file_scans_as_dynamic(self):
        scan = tm.scan_source("src/x.py", "def broken(:\n")
        assert scan.dynamic and scan.parse_error

    def test_fingerprint_ignores_body_edits(self):
        before = tm.scan_source("src/x.py", "import a\nVALUE = 1\n")
        after = tm.scan_source(
            "src/x.py", "import a\n\nVALUE = 2  # reworded\n"
        )
        drifted = tm.scan_source("src/x.py", "import a, b\nVALUE = 1\n")
        assert before.fingerprint == after.fingerprint
        assert before.fingerprint != drifted.fingerprint


class TestBuildMap:
    def test_every_importing_test_is_mapped(self, project):
        built = tm.build_map(project)
        # test_extra reaches pkg.core only transitively (via
        # pkg.extra); map correctness demands it still be selected
        # when core changes.
        assert built.module_tests["pkg.core"] == [
            "tests/test_core.py",
            "tests/test_extra.py",
        ]
        assert built.module_tests["pkg.extra"] == [
            "tests/test_extra.py",
        ]
        assert built.module_tests["pkg.leaf"] == []
        # Parent-package semantics: importing pkg.core executes
        # pkg/__init__, so the package maps to both tests too.
        assert built.module_tests["pkg"] == [
            "tests/test_core.py",
            "tests/test_extra.py",
        ]

    def test_lazy_exports_resolve_to_defining_module(self, tmp_path):
        write_project(
            tmp_path,
            {
                "src/lazy/__init__.py": (
                    "from importlib import import_module\n"
                    '_LAZY_EXPORTS = {"Thing": "lazy.impl"}\n'
                ),
                "src/lazy/impl.py": "class Thing: pass\n",
                "src/lazy/other.py": "OTHER = 1\n",
                "tests/test_lazy.py": "from lazy import Thing\n",
            },
        )
        built = tm.build_map(tmp_path)
        assert built.module_tests["lazy.impl"] == ["tests/test_lazy.py"]
        assert built.module_tests["lazy.other"] == []

    def test_dynamic_test_depends_on_everything(self, project):
        write_project(
            project,
            {"tests/test_dyn.py": "__import__(__name__)\n"},
        )
        built = tm.build_map(project)
        for module in built.modules:
            assert "tests/test_dyn.py" in built.module_tests[module]

    def test_conftest_deps_become_global(self, project):
        write_project(
            project, {"tests/conftest.py": "import pkg.leaf\n"}
        )
        built = tm.build_map(project)
        assert "pkg.leaf" in built.global_modules

    def test_roundtrip_through_json(self, project, tmp_path):
        built = tm.build_map(project)
        path = tmp_path / "map.json"
        built.save(path)
        assert tm.TestMap.load(path).to_dict() == built.to_dict()


class TestSelect:
    def fresh(self, project):
        return tm.build_map(project)

    def test_change_selects_exactly_the_importing_tests(self, project):
        built = self.fresh(project)
        selection = tm.select(built, project, ["src/pkg/core.py"])
        assert selection.mode == "subset"
        assert selection.tests == [
            "tests/test_core.py",
            "tests/test_extra.py",
        ]
        narrower = tm.select(built, project, ["src/pkg/extra.py"])
        assert narrower.tests == ["tests/test_extra.py"]

    def test_changed_test_file_selects_itself(self, project):
        built = self.fresh(project)
        selection = tm.select(built, project, ["tests/test_core.py"])
        assert selection.tests == ["tests/test_core.py"]

    def test_conftest_edit_falls_back_to_full(self, project):
        built = self.fresh(project)
        selection = tm.select(built, project, ["tests/conftest.py"])
        assert selection.mode == "full"
        assert any("conftest" in r for r in selection.reasons)

    def test_global_module_falls_back_to_full(self, project):
        write_project(
            project, {"tests/conftest.py": "import pkg.leaf\n"}
        )
        built = self.fresh(project)
        selection = tm.select(built, project, ["src/pkg/leaf.py"])
        assert selection.mode == "full"
        assert any("conftest dependency" in r for r in selection.reasons)

    def test_unmapped_file_falls_back_to_full(self, project):
        built = self.fresh(project)
        selection = tm.select(built, project, ["data/blob.bin"])
        assert selection.mode == "full"
        assert any("unmapped" in r for r in selection.reasons)

    def test_import_drift_makes_the_map_stale(self, project):
        built = self.fresh(project)
        write_project(
            project, {"tests/test_core.py": "import pkg.extra\n"}
        )
        selection = tm.select(built, project, ["src/pkg/leaf.py"])
        assert selection.mode == "full"
        assert any("stale" in r for r in selection.reasons)

    def test_body_edit_keeps_the_map_fresh(self, project):
        built = self.fresh(project)
        write_project(
            project,
            {"src/pkg/core.py": "VALUE = 2\n\n\ndef helper():\n    pass\n"},
        )
        selection = tm.select(built, project, ["src/pkg/core.py"])
        assert selection.mode == "subset"

    def test_added_file_makes_the_map_stale(self, project):
        built = self.fresh(project)
        write_project(project, {"src/pkg/newmod.py": ""})
        selection = tm.select(built, project, ["src/pkg/core.py"])
        assert selection.mode == "full"
        assert any("added" in r for r in selection.reasons)

    def test_scanner_version_mismatch_is_stale(self, project):
        built = self.fresh(project)
        built.scanner_version = tm.SCANNER_VERSION - 1
        selection = tm.select(built, project, ["src/pkg/core.py"])
        assert selection.mode == "full"
        assert any("scanner" in r for r in selection.reasons)

    def test_inert_file_selects_nothing(self, project):
        built = self.fresh(project)
        selection = tm.select(built, project, [".gitignore"])
        assert selection.mode == "subset"
        assert selection.tests == []

    @pytest.mark.parametrize(
        "path",
        [
            ".github/workflows/ci.yml",
            ".github/actions/setup-repro/action.yml",
            "Dockerfile",
            ".dockerignore",
        ],
    )
    def test_ci_config_edit_runs_everything_by_policy(
        self, project, path
    ):
        # Not the unmapped-file wildcard: the reason must say the
        # fallback is deliberate policy for CI/deployment config.
        built = self.fresh(project)
        selection = tm.select(built, project, [path])
        assert selection.mode == "full"
        assert any("CI/deployment config" in r for r in selection.reasons)
        assert not any("unmapped" in r for r in selection.reasons)


class TestCheckDrift:
    def test_fresh_map_has_no_drift(self, project):
        built = tm.build_map(project)
        assert tm.check_drift(built, tm.build_map(project)) == []

    def test_import_change_is_reported(self, project):
        committed = tm.build_map(project)
        write_project(
            project, {"src/pkg/core.py": "from pkg import leaf\n"}
        )
        problems = tm.check_drift(committed, tm.build_map(project))
        assert any("src/pkg/core.py" in p for p in problems)


class TestCommittedMap:
    """The acceptance contract against the real repository."""

    @pytest.fixture(scope="class")
    def committed(self):
        assert MAP_PATH.is_file(), (
            "tests/testmap.json is missing; run 'rehearsal testmap "
            "build'"
        )
        return tm.TestMap.load(MAP_PATH)

    def test_committed_map_is_fresh(self, committed):
        fresh = tm.build_map(REPO_ROOT)
        problems = tm.check_drift(committed, fresh)
        assert not problems, (
            "tests/testmap.json is stale — run 'rehearsal testmap "
            f"build' and commit the result: {problems}"
        )

    def test_shrinker_edit_selects_a_small_subset(self, committed):
        selection = tm.select(
            committed, REPO_ROOT, ["src/repro/testing/shrink.py"]
        )
        assert selection.mode == "subset", selection.reasons
        assert selection.selected_fraction <= 0.40
        assert "tests/test_fuzz_differential.py" in selection.tests
        assert "tests/test_regressions.py" in selection.tests

    def test_docs_edit_selects_the_link_checker(self, committed):
        selection = tm.select(committed, REPO_ROOT, ["README.md"])
        assert selection.tests == [tm.DOCS_TEST]

    def test_regression_corpus_edit_selects_the_replay_test(
        self, committed
    ):
        selection = tm.select(
            committed,
            REPO_ROOT,
            ["tests/regressions/clean-seed42-case16.pp"],
        )
        assert selection.tests == list(tm.REGRESSION_TESTS)

    def test_map_edit_selects_this_file(self, committed):
        selection = tm.select(
            committed, REPO_ROOT, ["tests/testmap.json"]
        )
        assert selection.tests == list(tm.MAP_TESTS)

    def test_conftest_edit_runs_everything(self, committed):
        selection = tm.select(
            committed, REPO_ROOT, ["tests/conftest.py"]
        )
        assert selection.mode == "full"

    def test_workflow_edit_runs_everything_with_a_policy_reason(
        self, committed
    ):
        selection = tm.select(
            committed, REPO_ROOT, [".github/workflows/ci.yml"]
        )
        assert selection.mode == "full"
        assert any("CI/deployment config" in r for r in selection.reasons)
