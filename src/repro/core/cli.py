"""Command-line interface: ``rehearsal <manifest.pp> [--platform ...]``.

Mirrors the artifact's CLI (§8: "Rehearsal takes the platform name as
a command-line flag").
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path as OsPath

from repro.analysis.determinism import DeterminismOptions
from repro.core.pipeline import Rehearsal
from repro.core.report import render_report
from repro.resources.compiler import ModelContext
from repro.resources.package_db import PackageDatabase


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rehearsal",
        description=(
            "Verify that a Puppet manifest is deterministic and idempotent "
            "(reproduction of Shambaugh et al., PLDI 2016)."
        ),
    )
    parser.add_argument("manifest", help="path to a .pp manifest file")
    parser.add_argument(
        "--platform",
        default="ubuntu",
        help="target platform for package modeling (default: ubuntu)",
    )
    parser.add_argument(
        "--node",
        default="default",
        help="node name used to select node blocks",
    )
    parser.add_argument(
        "--no-pruning",
        action="store_true",
        help="disable file pruning (§4.4)",
    )
    parser.add_argument(
        "--no-commutativity",
        action="store_true",
        help="disable the commutativity reduction (§4.3)",
    )
    parser.add_argument(
        "--no-elimination",
        action="store_true",
        help="disable resource elimination (§4.4)",
    )
    parser.add_argument(
        "--strict-packages",
        action="store_true",
        help="fail on packages missing from the database instead of "
        "synthesizing a listing",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="analysis timeout in seconds",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="on non-determinism, narrate both diverging orders step "
        "by step on the witness machine state",
    )
    return parser


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)
    source = OsPath(args.manifest).read_text(encoding="utf8")
    options = DeterminismOptions(
        use_pruning=not args.no_pruning,
        use_commutativity=not args.no_commutativity,
        use_elimination=not args.no_elimination,
        timeout_seconds=args.timeout,
    )
    context = ModelContext(
        package_db=PackageDatabase(synthesize=not args.strict_packages),
        platform=args.platform,
    )
    tool = Rehearsal(context=context, options=options, node_name=args.node)
    report = tool.verify(source, name=args.manifest)
    print(render_report(report))
    if (
        args.explain
        and report.determinism is not None
        and not report.determinism.deterministic
        and report.error is None
    ):
        from repro.core.report import render_explanation

        _, programs = tool.compile(source)
        print()
        print(render_explanation(report.determinism, programs))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
