#!/usr/bin/env python3
"""Regenerate every figure of the paper's §6 as text tables.

This is the standalone companion to the pytest-benchmark suite: it
prints the same rows/series the paper plots, suitable for pasting into
EXPERIMENTS.md.

Run:  python benchmarks/run_figures.py [--timeout SECONDS] [--smoke]
                                       [--json PATH]

``--smoke`` runs a seconds-long subset (used by CI): Fig. 11a over the
whole corpus, the time figures over two representative benchmarks, and
Fig. 13 at small n — enough to catch a broken corpus or harness
without paying for the full sweep.

``--json PATH`` additionally writes a machine-readable report: one
entry per figure with its wall-clock seconds and rendered rows.  The
``bench-regression`` CI job diffs this against the committed
``benchmarks/baseline.json`` (see ``benchmarks/compare_baseline.py``).
"""

from __future__ import annotations

import argparse
import json
import time

from repro.bench.harness import (
    BENCHMARK_NAMES,
    batch_cache_rows,
    batch_throughput_rows,
    corpus_determinism_rows,
    daemon_latency_rows,
    fig11a_rows,
    fig11b_rows,
    fig11c_rows,
    fig12_rows,
    fig13_deterministic_rows,
    fig13_exploration_rows,
    fig13_rows,
    portfolio_speedup_rows,
    render_rows,
    verdict_rows,
    warm_reverify_rows,
)

SMOKE_NAMES = ("ntp-nondet", "ntp-fixed")

JSON_SCHEMA_VERSION = 1


def figure_specs(timeout: float, smoke: bool):
    """The figure list as (key, title, header, thunk) — lazy, so the
    key set is inspectable without running anything (the baseline
    comparison pins it)."""
    names = SMOKE_NAMES if smoke else tuple(BENCHMARK_NAMES)
    subset = " (smoke subset)" if smoke else ""

    figures = [
        (
            "fig11a",
            "Fig. 11a — written paths per state (pruning off / on)",
            ["benchmark", "no pruning", "pruning"],
            lambda: fig11a_rows(),
        ),
        (
            "corpus-determinism",
            f"Full-corpus determinacy{subset} — production configuration "
            "(incremental per-pair solving)",
            ["benchmark", "time"],
            lambda: corpus_determinism_rows(names=names),
        ),
        (
            "fig11b",
            f"Fig. 11b{subset} — determinacy time, commutativity on "
            "(pruning off / on)",
            ["benchmark", "no pruning", "pruning"],
            lambda: fig11b_rows(timeout=timeout, names=names),
        ),
        (
            "fig11c",
            f"Fig. 11c{subset} — determinacy time, §4.4 passes off "
            "(commutativity off / on)",
            ["benchmark", "no commutativity", "commutativity"],
            lambda: fig11c_rows(timeout=timeout, names=names),
        ),
    ]
    if not smoke:
        figures.append(
            (
                "fig12",
                "Fig. 12 — idempotence-check time",
                ["benchmark", "time"],
                lambda: fig12_rows(),
            )
        )
    figures.append(
        (
            "fig13",
            f"Fig. 13{subset} — n conflicting writes (non-deterministic: "
            "early SAT model)",
            ["n", "time"],
            lambda: fig13_rows(
                ns=(2, 3) if smoke else (2, 3, 4, 5, 6), timeout=timeout
            ),
        )
    )
    figures.append(
        (
            "exploration",
            f"Exploration{subset} — reachable-state DAG on the Fig. 13 "
            "workload (branches vs. the n! order tree)",
            ["n", "branches", "memo hits", "distinct finals", "time"],
            lambda: fig13_exploration_rows(
                ns=(2, 3, 4, 5, 6) if smoke else (2, 3, 4, 5, 6, 7, 8),
                timeout=timeout,
            ),
        )
    )
    if not smoke:
        figures.append(
            (
                "fig13-deterministic",
                "Fig. 13 — deterministic variant (full UNSAT proof)",
                ["n", "time"],
                lambda: fig13_deterministic_rows(
                    ns=(2, 3, 4, 5), timeout=timeout
                ),
            )
        )
        figures.append(
            (
                "verdicts",
                '§6 "Bugs found" — verdicts',
                ["benchmark", "deterministic", "idempotent (of fix)"],
                lambda: [
                    (name, "yes" if det else "NO", "yes" if idem else "NO")
                    for name, det, idem in verdict_rows()
                ],
            )
        )
    worker_counts = (1, 2) if smoke else (1, 2, 4)
    figures.append(
        (
            "batch-throughput",
            f"Batch throughput{subset} — corpus via repro.service, "
            "cache off (speedup needs >1 core)",
            ["workers", "time", "speedup"],
            lambda: [
                (workers, seconds, f"{speedup:.2f}x")
                for workers, seconds, speedup in batch_throughput_rows(
                    worker_counts=worker_counts, names=names
                )
            ],
        )
    )
    speedup_names = (
        ("irc-nondet",)
        if smoke
        else (
            "dns-nondet",
            "irc-nondet",
            "logstash-nondet",
            "ntp-nondet",
            "rsyslog-nondet",
            "xinetd-nondet",
        )
    )
    figures.append(
        (
            "portfolio-speedup",
            f"Portfolio / cube speedup{subset} — determinacy check, "
            "sequential vs. solver_workers=4 (see docs/solver.md)",
            ["benchmark", "sequential", "4 workers", "speedup"],
            lambda: portfolio_speedup_rows(names=speedup_names, workers=4),
        )
    )
    figures.append(
        (
            "batch-cache",
            f"Verdict cache{subset} — cold vs. warm batch run",
            ["run", "time", "solver time"],
            lambda: batch_cache_rows(names=names),
        )
    )
    figures.append(
        (
            "edit-latency",
            "Edit latency — one-resource edit on a 50-file catalog: "
            "from scratch, with a cold incremental store, and "
            "re-verified against the hot store (see "
            "docs/incremental.md)",
            ["run", "time", "verdict"],
            lambda: warm_reverify_rows(resources=50),
        )
    )
    figures.append(
        (
            "daemon-latency",
            "Daemon latency — warm one-edit re-verify, in-process vs. "
            "an HTTP round trip through `rehearsal serve` (see "
            "docs/serve.md)",
            ["run", "time", "note"],
            lambda: daemon_latency_rows(resources=12),
        )
    )
    return figures


def figure_keys(smoke: bool):
    """The set of figure keys a run would report (without running)."""
    return {key for key, _, _, _ in figure_specs(timeout=0.0, smoke=smoke)}


def collect_figures(timeout: float, smoke: bool):
    """Return a list of (key, title, header, rows, seconds), one per
    figure, printing each table as soon as it is computed."""
    collected = []
    first = True
    for key, title, header, thunk in figure_specs(timeout, smoke):
        start = time.perf_counter()
        rows = thunk()
        seconds = time.perf_counter() - start
        if not first:
            print()
        first = False
        print(render_rows(title, header, rows))
        collected.append((key, title, header, rows, seconds))
    return collected


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--timeout",
        type=float,
        default=20.0,
        help="per-configuration budget in seconds (paper: 600)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast subset for CI: Fig. 11a plus two benchmarks",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write a machine-readable per-figure report "
        "(wall-clock seconds + rows) to PATH",
    )
    args = parser.parse_args()
    collected = collect_figures(args.timeout, args.smoke)
    if args.json is not None:
        report = {
            "schema": JSON_SCHEMA_VERSION,
            "smoke": args.smoke,
            "timeout": args.timeout,
            "figures": {
                key: {
                    "title": title,
                    "seconds": round(seconds, 4),
                    "rows": [[str(c) for c in row] for row in rows],
                }
                for key, title, header, rows, seconds in collected
            },
        }
        with open(args.json, "w", encoding="utf8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote JSON report to {args.json}")


if __name__ == "__main__":
    main()
