"""Boolean logic substrate: hash-consed formulas and Tseitin CNF."""

from repro.logic.cnf import CNF, tseitin
from repro.logic.simplify import propagate_units, substitute
from repro.logic.terms import Term, TermBank, dag_size, iter_dag

__all__ = [
    "CNF",
    "Term",
    "TermBank",
    "dag_size",
    "iter_dag",
    "propagate_units",
    "substitute",
    "tseitin",
]
