"""Shrunk fuzz counterexamples as a permanent regression corpus.

Every disagreement the fuzzer ever finds is shrunk, serialized through
:mod:`repro.puppet.printer`, and committed under ``tests/regressions/``
with a machine-readable comment header.  A parametrized test replays
each file through the differential driver forever; this module is the
shared plumbing (header format, discovery) used by that test and by
``tools/check_regressions.py``.

Header format — ``# key: value`` comment lines before any code:

.. code-block:: puppet

    # rehearsal-fuzz reproducer
    # seed: 42
    # case-id: 17
    # generator-version: 1
    # bug-class: shared-write
    # found-by: nightly-fuzz
    # disagreement: missed_nondet
    # expected-deterministic: false
    # expected-idempotent: none

``seed``/``case-id``/``generator-version`` re-create the original
(unshrunk) case; ``expected-*`` pin the verdicts the *fixed* pipeline
must produce (``none`` for "not checked", e.g. idempotence of a
non-deterministic manifest); ``disagreement`` records what went wrong
when the file was minted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

MARKER = "rehearsal-fuzz reproducer"

#: Header keys every regression file must carry.
REQUIRED_KEYS = (
    "seed",
    "case-id",
    "generator-version",
    "disagreement",
    "expected-deterministic",
)

#: Disagreement kinds the differential driver can actually emit; a
#: header claiming anything else was hand-edited or minted by an
#: incompatible tool.
KNOWN_DISAGREEMENTS = frozenset(
    {
        "missed_nondet",
        "false_nondet",
        "witness_invalid",
        "missed_nonidempotence",
        "idempotence_witness_invalid",
        "race_pair_mismatch",
        "race_path_mismatch",
        "pipeline_error",
        "lint_false_race",
    }
)

_HEADER_RE = re.compile(r"^#\s*([a-z-]+):\s*(.+?)\s*$")


@dataclass
class RegressionHeader:
    seed: int
    case_id: int
    generator_version: int
    disagreement: str
    expected_deterministic: Optional[bool]
    expected_idempotent: Optional[bool] = None
    bug_class: Optional[str] = None
    found_by: Optional[str] = None


class RegressionFormatError(ValueError):
    """The file is not a well-formed fuzz reproducer."""


def discover(directory: Path) -> List[Path]:
    """Every reproducer in ``directory``, sorted for stable test ids."""
    return sorted(Path(directory).glob("*.pp"))


def parse_header(text: str, name: str = "<regression>") -> RegressionHeader:
    lines = text.splitlines()
    if not lines or MARKER not in lines[0]:
        raise RegressionFormatError(
            f"{name}: first line must be '# {MARKER}'"
        )
    fields = {}
    for line in lines[1:]:
        if not line.startswith("#"):
            break
        match = _HEADER_RE.match(line)
        if match:
            fields[match.group(1)] = match.group(2)
    missing = [key for key in REQUIRED_KEYS if key not in fields]
    if missing:
        raise RegressionFormatError(
            f"{name}: header is missing {missing}"
        )
    try:
        return RegressionHeader(
            seed=int(fields["seed"]),
            case_id=int(fields["case-id"]),
            generator_version=int(fields["generator-version"]),
            disagreement=fields["disagreement"],
            expected_deterministic=_tristate(
                fields["expected-deterministic"], name
            ),
            expected_idempotent=_tristate(
                fields.get("expected-idempotent", "none"), name
            ),
            bug_class=fields.get("bug-class"),
            found_by=fields.get("found-by"),
        )
    except ValueError as exc:
        raise RegressionFormatError(f"{name}: {exc}") from None


def validate_header(text: str, name: str = "<regression>") -> List[str]:
    """Validate the full header schema field by field.

    Unlike :func:`parse_header` (which raises on the first problem so
    replay can bail early), this returns *every* problem with a
    per-field message — ``tools/check_regressions.py`` and the burn-in
    driver report them all at once.  An empty list means the header is
    well formed.
    """
    problems: List[str] = []
    lines = text.splitlines()
    if not lines or MARKER not in lines[0]:
        problems.append(f"{name}: first line must be '# {MARKER}'")
        return problems
    fields = {}
    for line in lines[1:]:
        if not line.startswith("#"):
            break
        match = _HEADER_RE.match(line)
        if match:
            key, value = match.group(1), match.group(2)
            if key in fields:
                problems.append(f"{name}: duplicate header key {key!r}")
            fields[key] = value
    for key in ("seed", "case-id", "generator-version"):
        raw = fields.get(key)
        if raw is None:
            problems.append(f"{name}: missing required key {key!r}")
        elif not raw.isdigit():
            problems.append(
                f"{name}: {key} must be a non-negative integer, "
                f"got {raw!r}"
            )
    disagreement = fields.get("disagreement")
    if disagreement is None:
        problems.append(f"{name}: missing required key 'disagreement'")
    elif disagreement not in KNOWN_DISAGREEMENTS:
        problems.append(
            f"{name}: unknown disagreement {disagreement!r} "
            f"(known: {', '.join(sorted(KNOWN_DISAGREEMENTS))})"
        )
    for key in ("expected-deterministic", "expected-idempotent"):
        raw = fields.get(key)
        if raw is None:
            if key in REQUIRED_KEYS:
                problems.append(f"{name}: missing required key {key!r}")
            continue
        if raw.strip().lower() not in ("true", "false", "none"):
            problems.append(
                f"{name}: {key} must be true/false/none, got {raw!r}"
            )
    if not fields.get("found-by"):
        problems.append(
            f"{name}: missing 'found-by' (which tool minted this?)"
        )
    body = "\n".join(
        line for line in lines if not line.startswith("#")
    ).strip()
    if not body:
        problems.append(f"{name}: no manifest body after the header")
    return problems


def format_reproducer(
    source: str,
    seed: int,
    case_id: int,
    disagreement: str,
    expected_deterministic: Optional[bool],
    expected_idempotent: Optional[bool] = None,
    bug_class: Optional[str] = None,
    found_by: str = "fuzz",
    generator_version: Optional[int] = None,
) -> str:
    """Render a reproducer file: header plus printed manifest."""
    from repro.testing.generate import GENERATOR_VERSION

    version = (
        GENERATOR_VERSION if generator_version is None else generator_version
    )
    lines = [
        f"# {MARKER}",
        f"# seed: {seed}",
        f"# case-id: {case_id}",
        f"# generator-version: {version}",
    ]
    if bug_class is not None:
        lines.append(f"# bug-class: {bug_class}")
    lines.append(f"# found-by: {found_by}")
    lines.append(f"# disagreement: {disagreement}")
    lines.append(
        f"# expected-deterministic: {_render_tristate(expected_deterministic)}"
    )
    lines.append(
        f"# expected-idempotent: {_render_tristate(expected_idempotent)}"
    )
    return "\n".join(lines) + "\n\n" + source.strip() + "\n"


def _tristate(raw: str, name: str) -> Optional[bool]:
    value = raw.strip().lower()
    if value == "true":
        return True
    if value == "false":
        return False
    if value == "none":
        return None
    raise RegressionFormatError(
        f"{name}: expected true/false/none, got {raw!r}"
    )


def _render_tristate(value: Optional[bool]) -> str:
    if value is None:
        return "none"
    return "true" if value else "false"
