"""The parallel-solving CLI surface: flag validation (exit 2 before
any work), end-to-end runs under the portfolio and cube backends, and
the JSON row's backend label."""

import json

import pytest

from repro.core.cli import main as cli_main

GOOD = """
file {"/etc/app.conf": content => "x" }
"""

NONDET = """
file {"/etc/ntp.conf": content => "server pool.example.org" }
package {"ntp": ensure => present }
"""


@pytest.fixture
def manifest(tmp_path):
    path = tmp_path / "site.pp"
    path.write_text(NONDET)
    return path


class TestFlagValidation:
    @pytest.mark.parametrize(
        "flags",
        [
            ("--portfolio", "0"),
            ("--portfolio", "-3"),
            ("--solver-workers", "0"),
            ("--solver-workers", "-1"),
            ("--solver", "dpll"),
            ("--solver", "portfolio:nope"),
        ],
    )
    def test_verify_rejects_bad_values(self, manifest, flags, capsys):
        assert cli_main(["verify", str(manifest), *flags]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    @pytest.mark.parametrize(
        "flags",
        [
            ("--portfolio", "0"),
            ("--solver-workers", "0"),
            ("--solver", "dpll"),
        ],
    )
    def test_verify_batch_rejects_bad_values(self, tmp_path, flags, capsys):
        (tmp_path / "good.pp").write_text(GOOD)
        code = cli_main(
            ["verify-batch", str(tmp_path), "--no-cache", *flags]
        )
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_fuzz_rejects_bad_portfolio(self, capsys):
        code = cli_main(
            ["fuzz", "--seed", "1", "--cases", "1", "--portfolio", "0"]
        )
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_external_spec_without_solver_is_exit_2(
        self, manifest, monkeypatch, capsys
    ):
        monkeypatch.setenv("PATH", "")
        code = cli_main(
            ["verify", str(manifest), "--solver", "external:auto"]
        )
        assert code == 2
        assert "kissat" in capsys.readouterr().err


class TestEndToEnd:
    def test_verify_portfolio_matches_sequential_verdict(
        self, manifest, capsys
    ):
        sequential = cli_main(["verify", str(manifest)])
        out_seq = capsys.readouterr().out
        raced = cli_main(
            [
                "verify",
                str(manifest),
                "--portfolio",
                "2",
                "--solver-workers",
                "2",
            ]
        )
        out_par = capsys.readouterr().out
        assert raced == sequential == 1
        assert ("NON-DETERMINISTIC" in out_seq) == (
            "NON-DETERMINISTIC" in out_par
        )
        assert "Race localized" in out_seq
        assert "Race localized" in out_par

    def test_batch_json_rows_name_the_backend(self, tmp_path, capsys):
        (tmp_path / "good.pp").write_text(GOOD)
        report_path = tmp_path / "report.json"
        code = cli_main(
            [
                "verify-batch",
                str(tmp_path / "good.pp"),
                "--no-cache",
                "--portfolio",
                "2",
                "--json",
                str(report_path),
            ]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["schema_version"] == 5
        (row,) = report["results"]
        assert row["solver_backend"] == "portfolio:2"

    def test_fuzz_portfolio_smoke(self, capsys):
        code = cli_main(
            [
                "fuzz",
                "--seed",
                "7",
                "--cases",
                "5",
                "--quiet",
                "--portfolio",
                "2",
            ]
        )
        assert code == 0
        assert "no disagreements" in capsys.readouterr().out
