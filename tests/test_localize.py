"""Tests for unsat-core race localization (repro.analysis.localize).

Pins the localized racing resource pair for all six non-deterministic
corpus benchmarks — the diagnostics ``rehearsal verify --explain`` and
the batch JSON rows surface.
"""

import networkx as nx
import pytest

from repro.analysis import DeterminismOptions, check_determinism
from repro.core.pipeline import Rehearsal
from repro.core.report import render_determinism, render_explanation
from repro.corpus import load_source
from repro.fs import Path, creat, file_, ite, none_, rm, seq

#: benchmark -> (racing pair, contended path) as seeded in the corpus
#: (see repro/corpus/__init__.py bug descriptions).
EXPECTED_RACES = {
    "dns-nondet": (
        {"File['/etc/dnsmasq.d/local.conf']", "Package['dnsmasq']"},
        "/etc/dnsmasq.d",
    ),
    "irc-nondet": (
        {"Ssh_authorized_key['ircops@admin']", "User['ircops']"},
        "/home/ircops",
    ),
    "logstash-nondet": (
        {"File['/etc/logstash/conf.d/10-pipeline.conf']", "Package['logstash']"},
        "/etc/logstash/conf.d",
    ),
    "ntp-nondet": (
        {"File['/etc/ntp.conf']", "Package['ntp']"},
        "/etc/ntp.conf",
    ),
    "rsyslog-nondet": (
        {"File['/etc/rsyslog.d/10-forward.conf']", "Package['rsyslog']"},
        "/etc/rsyslog.d",
    ),
    "xinetd-nondet": (
        {"File['/etc/xinetd.conf']", "Package['xinetd']"},
        "/etc/xinetd.conf",
    ),
}


def _check(name):
    tool = Rehearsal()
    graph, programs = tool.compile(load_source(name))
    return check_determinism(graph, programs, DeterminismOptions())


class TestCorpusRaces:
    @pytest.mark.parametrize("name", sorted(EXPECTED_RACES))
    def test_localized_pair_is_the_seeded_bug(self, name):
        result = _check(name)
        assert not result.deterministic
        race = result.race
        assert race is not None, f"{name}: no race localized"
        expected_pair, expected_path = EXPECTED_RACES[name]
        assert {str(race.resource_a), str(race.resource_b)} == expected_pair
        assert str(race.path) == expected_path
        # The corpus bugs are all missing-dependency errors: one order
        # errors where the other succeeds.
        assert race.ok_divergence

    def test_deterministic_manifest_has_no_race(self):
        tool = Rehearsal()
        graph, programs = tool.compile(load_source("ntp-fixed"))
        result = check_determinism(graph, programs, DeterminismOptions())
        assert result.deterministic
        assert result.race is None


def set_file(path, content):
    """Last-writer-wins file write (overwrite semantics)."""
    p = Path.of(path)
    return ite(
        file_(p),
        seq(rm(p), creat(p, content)),
        ite(
            none_(p),
            creat(p, content),
            seq(rm(p), creat(p, content)),
        ),
    )


class TestSyntheticRaces:
    def test_content_race_core_names_the_contended_path(self):
        """Two unordered writers of different content to one path: both
        orders succeed, so the unsat core must implicate the path's
        final value, not the error status."""
        programs = {
            "a": set_file("/shared", "from-a"),
            "b": set_file("/shared", "from-b"),
        }
        graph = nx.DiGraph()
        graph.add_nodes_from(programs)
        result = check_determinism(graph, programs, DeterminismOptions())
        assert not result.deterministic
        race = result.race
        assert race is not None
        assert {race.resource_a, race.resource_b} == {"a", "b"}
        assert str(race.path) == "/shared"
        assert Path.of("/shared") in race.core_paths
        assert not race.ok_divergence

    def test_three_writers_localize_some_racing_pair(self):
        programs = {
            f"w{i}": set_file("/shared", f"c{i}") for i in range(3)
        }
        graph = nx.DiGraph()
        graph.add_nodes_from(programs)
        result = check_determinism(graph, programs, DeterminismOptions())
        assert not result.deterministic
        race = result.race
        assert race is not None
        assert race.resource_a != race.resource_b
        assert str(race.path) == "/shared"

    def test_ordered_pair_not_blamed(self):
        """With a dependency edge between the only two writers the
        manifest is deterministic — nothing to localize."""
        programs = {
            "a": set_file("/shared", "one"),
            "b": set_file("/shared", "two"),
        }
        graph = nx.DiGraph()
        graph.add_nodes_from(programs)
        graph.add_edge("a", "b")
        result = check_determinism(graph, programs, DeterminismOptions())
        assert result.deterministic
        assert result.race is None


class TestWritersByPath:
    def test_contended_path_has_two_writers(self):
        """prune_manifest's writers map flags the contention candidate
        the localizer later names (the ntp Fig. 3a pattern: package
        and config file both write /etc/ntp.conf)."""
        from repro.analysis.pruning import prune_manifest

        tool = Rehearsal()
        _, programs = tool.compile(load_source("ntp-nondet"))
        _, report = prune_manifest(list(programs.values()))
        writers = report.writers_by_path
        assert len(writers[Path.of("/etc/ntp.conf")]) == 2

    def test_pruned_paths_never_multi_writer(self):
        from repro.analysis.pruning import prune_manifest

        tool = Rehearsal()
        for name in ("ntp-nondet", "irc-nondet", "hosting"):
            _, programs = tool.compile(load_source(name))
            _, report = prune_manifest(list(programs.values()))
            for path in report.pruned_paths:
                assert len(report.writers_by_path.get(path, [])) <= 1


class TestRendering:
    def test_report_names_the_race(self):
        result = _check("ntp-nondet")
        text = render_determinism(result)
        assert "Race localized" in text
        assert "File['/etc/ntp.conf']" in text
        assert "Package['ntp']" in text

    def test_explanation_leads_with_the_race(self):
        tool = Rehearsal()
        source = load_source("ntp-nondet")
        graph, programs = tool.compile(source)
        result = check_determinism(graph, programs, DeterminismOptions())
        text = render_explanation(result, programs)
        assert text.splitlines()[0].startswith("Race localized")
        assert "race on /etc/ntp.conf" in text

    def test_batch_json_rows_carry_the_race(self):
        from repro.service.schema import ManifestResult

        tool = Rehearsal()
        report = tool.verify(load_source("ntp-nondet"), name="ntp-nondet")
        row = ManifestResult.from_report(report)
        assert row.race_pair is not None
        assert set(row.race_pair) == {"File['/etc/ntp.conf']", "Package['ntp']"}
        assert row.race_path == "/etc/ntp.conf"
        # Round-trips through the wire/cache dict form.
        assert ManifestResult.from_dict(row.to_dict()).race_pair == row.race_pair
