# jpa — Java web application on Tomcat with a MySQL backend (§6
# benchmark "jpa").
#
# Exercises class inheritance (params → base → tomcat) and cross-class
# dependencies (the whole database tier is ordered before the
# application tier).

class jpa::params {
  $app_root  = '/srv/jpa'
  $db_name   = 'jpadb'
  $db_user   = 'jpa'
  $http_port = 8080
}

class jpa::base inherits jpa::params {
  package { 'openjdk-8-jre-headless':
    ensure => installed,
  }
}

class jpa::tomcat inherits jpa::base {
  # tomcat7 pulls in the JRE: the edge keeps the two installs ordered.
  package { 'tomcat7':
    ensure  => installed,
    require => Package['openjdk-8-jre-headless'],
  }

  file { '/etc/tomcat7/server.xml':
    ensure  => file,
    content => "<Server port=\"8005\">\n  <Connector port=\"${http_port}\" protocol=\"HTTP/1.1\"/>\n</Server>\n",
    require => Package['tomcat7'],
  }

  file { '/etc/default/tomcat7':
    ensure  => file,
    content => "TOMCAT7_USER=tomcat7\nJAVA_OPTS=\"-Xmx256m\"\n",
    require => Package['tomcat7'],
  }

  service { 'tomcat7':
    ensure    => running,
    enable    => true,
    subscribe => [File['/etc/tomcat7/server.xml'], File['/etc/default/tomcat7']],
  }
}

class jpa::db inherits jpa::params {
  package { 'mysql-server':
    ensure => installed,
  }

  file { '/etc/mysql/conf.d/jpa.cnf':
    ensure  => file,
    content => "[mysqld]\n# schema ${db_name}, application user ${db_user}\nmax_connections = 64\n",
    require => Package['mysql-server'],
  }

  service { 'mysql':
    ensure    => running,
    enable    => true,
    subscribe => File['/etc/mysql/conf.d/jpa.cnf'],
  }
}

class jpa::app inherits jpa::params {
  file { '/srv':
    ensure => directory,
  }

  file { $app_root:
    ensure  => directory,
    require => File['/srv'],
  }

  file { "${app_root}/app.properties":
    ensure  => file,
    content => "db=${db_name}\nuser=${db_user}\nport=${http_port}\n",
    require => File[$app_root],
  }
}

include jpa::tomcat
include jpa::db
include jpa::app

# Cross-class dependencies: the database tier precedes both the
# application payload and the servlet container.
Class['jpa::db'] -> Class['jpa::app']
Class['jpa::db'] -> Class['jpa::tomcat']
