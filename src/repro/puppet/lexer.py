"""Hand-written lexer for the Puppet DSL subset.

Notable Puppet-isms handled here:

* barewords may be namespaced (``nginx::config``); a leading capital on
  any segment makes a type reference (``File``, ``Nginx::Config``);
* variables: ``$x``, ``$::top``, ``$nginx::port``;
* single-quoted strings are literal; double-quoted strings keep their
  raw payload — interpolation is resolved during evaluation, when
  variable scopes exist;
* ``<|`` / ``|>`` collector brackets vs comparison operators;
* ``#`` line comments and ``/* */`` block comments.
"""

from __future__ import annotations

from typing import List

from repro.errors import PuppetSyntaxError
from repro.puppet.tokens import KEYWORDS, Token, TokenKind

_SIMPLE = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACK,
    "]": TokenKind.RBRACK,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ":": TokenKind.COLON,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    "?": TokenKind.QUESTION,
    ".": TokenKind.DOT,
    "*": TokenKind.STAR,
    "%": TokenKind.PERCENT,
}


class Lexer:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(Token(TokenKind.EOF, "", self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # -- internals ----------------------------------------------------------

    def _error(self, message: str) -> PuppetSyntaxError:
        return PuppetSyntaxError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        out = self.source[self.pos : self.pos + count]
        for ch in out:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return out

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "#":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise self._error("unterminated block comment")
                self._advance(2)
            else:
                return

    def _token(self, kind: TokenKind, text: str, line: int, col: int) -> Token:
        return Token(kind, text, line, col)

    def _next_token(self) -> Token:
        line, col = self.line, self.column
        ch = self._peek()
        two = ch + self._peek(1)

        if two in ("=>",):
            self._advance(2)
            return self._token(TokenKind.FARROW, two, line, col)
        if two == "+>":
            self._advance(2)
            return self._token(TokenKind.PARROW, two, line, col)
        if two == "->":
            self._advance(2)
            return self._token(TokenKind.ARROW_RIGHT, two, line, col)
        if two == "~>":
            self._advance(2)
            return self._token(TokenKind.NOTIFY_RIGHT, two, line, col)
        if two == "<-":
            self._advance(2)
            return self._token(TokenKind.ARROW_LEFT, two, line, col)
        if two == "<~":
            self._advance(2)
            return self._token(TokenKind.NOTIFY_LEFT, two, line, col)
        if two == "<|":
            self._advance(2)
            return self._token(TokenKind.COLLECT_OPEN, two, line, col)
        if two == "|>":
            self._advance(2)
            return self._token(TokenKind.COLLECT_CLOSE, two, line, col)
        if two == "==":
            self._advance(2)
            return self._token(TokenKind.EQ, two, line, col)
        if two == "!=":
            self._advance(2)
            return self._token(TokenKind.NEQ, two, line, col)
        if two == "=~":
            self._advance(2)
            return self._token(TokenKind.MATCH, two, line, col)
        if two == "!~":
            self._advance(2)
            return self._token(TokenKind.NOMATCH, two, line, col)
        if two == "<=":
            self._advance(2)
            return self._token(TokenKind.LTEQ, two, line, col)
        if two == ">=":
            self._advance(2)
            return self._token(TokenKind.GTEQ, two, line, col)
        if two == "@@":
            self._advance(2)
            return self._token(TokenKind.ATAT, two, line, col)

        if ch in _SIMPLE:
            self._advance()
            return self._token(_SIMPLE[ch], ch, line, col)
        if ch == "<":
            self._advance()
            return self._token(TokenKind.LT, ch, line, col)
        if ch == ">":
            self._advance()
            return self._token(TokenKind.GT, ch, line, col)
        if ch == "=":
            self._advance()
            return self._token(TokenKind.ASSIGN, ch, line, col)
        if ch == "+":
            self._advance()
            return self._token(TokenKind.PLUS, ch, line, col)
        if ch == "-":
            self._advance()
            return self._token(TokenKind.MINUS, ch, line, col)
        if ch == "/":
            self._advance()
            return self._token(TokenKind.SLASH, ch, line, col)
        if ch == "!":
            self._advance()
            return self._token(TokenKind.BANG, ch, line, col)
        if ch == "@":
            self._advance()
            return self._token(TokenKind.AT, ch, line, col)
        if ch == "$":
            return self._lex_variable()
        if ch == "'":
            return self._lex_single_quoted()
        if ch == '"':
            return self._lex_double_quoted()
        if ch.isdigit():
            return self._lex_number()
        if ch.isalpha() or ch == "_" or (ch == ":" and self._peek(1) == ":"):
            return self._lex_word()
        raise self._error(f"unexpected character {ch!r}")

    def _lex_variable(self) -> Token:
        line, col = self.line, self.column
        self._advance()  # $
        name = []
        if self._peek() == ":" and self._peek(1) == ":":
            name.append(self._advance(2))
        while True:
            ch = self._peek()
            if ch.isalnum() or ch == "_":
                name.append(self._advance())
            elif ch == ":" and self._peek(1) == ":":
                name.append(self._advance(2))
            else:
                break
        if not name:
            raise self._error("empty variable name after '$'")
        return self._token(TokenKind.VARIABLE, "".join(name), line, col)

    def _lex_single_quoted(self) -> Token:
        line, col = self.line, self.column
        self._advance()
        out = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string literal")
            ch = self._advance()
            if ch == "\\" and self._peek() in ("'", "\\"):
                out.append(self._advance())
            elif ch == "'":
                break
            else:
                out.append(ch)
        return self._token(TokenKind.STRING, "".join(out), line, col)

    def _lex_double_quoted(self) -> Token:
        line, col = self.line, self.column
        self._advance()
        out = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string literal")
            ch = self._advance()
            if ch == "\\":
                nxt = self._advance()
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\", "$": "\\$"}
                out.append(mapping.get(nxt, "\\" + nxt))
            elif ch == '"':
                break
            else:
                out.append(ch)
        return self._token(TokenKind.DQSTRING, "".join(out), line, col)

    def _lex_number(self) -> Token:
        line, col = self.line, self.column
        out = []
        while self._peek().isdigit():
            out.append(self._advance())
        if self._peek() == "." and self._peek(1).isdigit():
            out.append(self._advance())
            while self._peek().isdigit():
                out.append(self._advance())
        return self._token(TokenKind.NUMBER, "".join(out), line, col)

    def _lex_word(self) -> Token:
        line, col = self.line, self.column
        out = []
        while True:
            ch = self._peek()
            if ch and (ch.isalnum() or ch in "_-"):
                out.append(self._advance())
            elif ch == ":" and self._peek(1) == ":":
                out.append(self._advance(2))
            else:
                break
        text = "".join(out)
        kind = KEYWORDS.get(text)
        if kind is not None:
            return self._token(kind, text, line, col)
        # A reference like File or Nginx::Config: first char of the
        # first non-empty segment is uppercase.
        segments = [s for s in text.split("::") if s]
        if segments and segments[0][0].isupper():
            return self._token(TokenKind.TYPEREF, text, line, col)
        return self._token(TokenKind.NAME, text, line, col)


def tokenize(source: str) -> List[Token]:
    return Lexer(source).tokenize()
