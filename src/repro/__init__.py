"""repro — a from-scratch reproduction of *Rehearsal: A Configuration
Verification Tool for Puppet* (Shambaugh, Weiss, Guha — PLDI 2016).

Public API tour:

* :class:`repro.Rehearsal` — the end-to-end tool: parse a Puppet
  manifest, build its resource graph, and verify determinism and
  idempotence.
* :mod:`repro.puppet` — the Puppet DSL frontend (§3.1).
* :mod:`repro.fs` — the FS language of filesystem operations (§3.2).
* :mod:`repro.resources` — resource models, C : R → FS (§3.3).
* :mod:`repro.analysis` — determinacy (§4), idempotence and invariants
  (§5), plus the scaling analyses (commutativity, pruning,
  elimination).
* :mod:`repro.smt`, :mod:`repro.logic`, :mod:`repro.sat` — the solver
  substrate replacing Z3 (see DESIGN.md).
* :mod:`repro.corpus` — the 13 benchmark configurations of §6.
* :mod:`repro.service` — batch verification: :class:`BatchVerifier` /
  :func:`verify_batch` fan a fleet of manifests out to worker
  processes behind a content-addressed :class:`VerdictCache`.
* :mod:`repro.testing` — differential fuzzing and the test
  orchestration layer (dependency-aware selection, SPRT burn-in,
  results database — see docs/testing.md).

The package init is **lazy** (PEP 562): importing ``repro`` binds only
``__version__``; every re-exported name resolves on first attribute
access via the ``_LAZY_EXPORTS`` table below.  This keeps ``import
repro.testing.orchestrate.testmap`` from dragging in the whole solver
stack, and — because the table is a static dict literal — lets the
test-selection import scanner (:mod:`repro.testing.orchestrate.testmap`)
resolve ``from repro import Rehearsal`` to its true defining module
instead of marking every module as a dependency of everything.
"""

from importlib import import_module

# The service package reads repro.__version__ (it keys the verdict
# cache), so the version must be bound before repro.service imports.
# 1.3.0: race localization validates candidate pairs concretely on the
# witness; 1.4.0: the static analyzer (repro.analysis.lint) ships and
# verify-batch rows gain a lint block; 1.5.0: the pluggable
# SolverBackend layer (portfolio racing, cube-and-conquer, external
# solvers) and verify-batch rows gain ``solver_backend``.
__version__ = "1.6.0"

#: name -> defining module.  A static literal on purpose: the import
#: scanner behind `rehearsal testmap` parses this table to resolve
#: ``from repro import X`` precisely (see docs/testing.md).
_LAZY_EXPORTS = {
    "AnalysisBudgetExceeded": "repro.errors",
    "BatchReport": "repro.service",
    "BatchVerifier": "repro.service",
    "DaemonConfig": "repro.service.daemon",
    "DependencyCycleError": "repro.errors",
    "DeterminismOptions": "repro.analysis.determinism",
    "DeterminismResult": "repro.analysis.determinism",
    "ExternalBackend": "repro.sat.external",
    "IdempotenceResult": "repro.analysis.idempotence",
    "ManifestResult": "repro.service",
    "PortfolioBackend": "repro.sat.portfolio",
    "PuppetEvalError": "repro.errors",
    "PuppetSyntaxError": "repro.errors",
    "Rehearsal": "repro.core.pipeline",
    "RehearsalDaemon": "repro.service.daemon",
    "ReproError": "repro.errors",
    "ResourceModelError": "repro.errors",
    "SolverBackend": "repro.sat.backend",
    "SolverConfig": "repro.sat.backend",
    "TieredVerdictCache": "repro.service.tiered",
    "VerdictCache": "repro.service",
    "VerificationReport": "repro.core.pipeline",
    "parse_backend_spec": "repro.sat.backend",
    "verify_batch": "repro.service",
}

__all__ = [*sorted(_LAZY_EXPORTS), "__version__"]


def __getattr__(name):
    target = _LAZY_EXPORTS.get(name)
    if target is not None:
        return getattr(import_module(target), name)
    # Fall back to submodule access, so `import repro; repro.corpus`
    # works without an explicit import of the submodule.
    qualified = f"{__name__}.{name}"
    try:
        return import_module(qualified)
    except ModuleNotFoundError as exc:
        # Only a *missing submodule* becomes AttributeError; a broken
        # import inside a real submodule must surface unchanged.
        if exc.name == qualified:
            raise AttributeError(
                f"module {__name__!r} has no attribute {name!r}"
            ) from None
        raise


def __dir__():
    return sorted(set(globals()) | set(__all__))
