# nginx — web server (§6 benchmark "nginx").
#
# Exercises a parameterized class: tuning knobs arrive as class
# parameters with defaults, and the declaration overrides some of them.

class nginx (
  $worker_processes = 4,
  $worker_connections = 768,
  $port = 80,
  $server_name = 'www.example.com'
) {
  package { 'nginx':
    ensure => installed,
  }

  file { '/etc/nginx/nginx.conf':
    ensure  => file,
    content => "user www-data;\nworker_processes ${worker_processes};\nevents { worker_connections ${worker_connections}; }\nhttp { include /etc/nginx/sites-available/*; }\n",
    require => Package['nginx'],
  }

  file { '/etc/nginx/sites-available/default':
    ensure  => file,
    content => "server {\n  listen ${port} default_server;\n  server_name ${server_name};\n  root /var/www/html;\n}\n",
    require => Package['nginx'],
  }

  service { 'nginx':
    ensure    => running,
    enable    => true,
    subscribe => [
      File['/etc/nginx/nginx.conf'],
      File['/etc/nginx/sites-available/default'],
    ],
  }
}

class { 'nginx':
  worker_processes => 8,
  port             => 8080,
}
