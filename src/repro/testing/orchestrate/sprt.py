"""Wald's sequential probability ratio test for burn-in decisions.

A quarantined reproducer is replayed trial by trial; each trial either
passes (the disagreement it was minted for stays fixed and the pinned
verdicts hold) or fails.  The SPRT decides between

* **H_stable** — the per-trial pass probability is at least
  ``p_stable`` (promote: the reproducer is a trustworthy pinned
  regression), and
* **H_flaky** — the pass probability is at most ``p_flaky`` (demote:
  the reproducer flakes and would poison tier-1).

After each trial the log-likelihood ratio

    llr += log(P(x | flaky) / P(x | stable))

is compared against Wald's boundaries ``log(beta / (1 - alpha))``
(accept H_stable) and ``log((1 - beta) / alpha)`` (accept H_flaky),
where ``alpha`` bounds the false-demotion and ``beta`` the
false-promotion probability.  The test stops the moment a boundary is
crossed — stable reproducers promote after a short streak of passes,
flaky ones demote almost immediately — and returns *undecided* if
``max_trials`` runs out first (the reproducer stays quarantined).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import List, Optional


class Decision(str, enum.Enum):
    PROMOTE = "promoted"
    DEMOTE = "demoted"
    UNDECIDED = "undecided"


@dataclass(frozen=True)
class SprtConfig:
    """Hypotheses and error bounds; defaults promote a perfectly
    stable reproducer in ~9 trials and demote on the first failure."""

    p_stable: float = 0.99
    p_flaky: float = 0.70
    alpha: float = 0.05
    beta: float = 0.05
    max_trials: int = 40

    def __post_init__(self):
        if not 0.0 < self.p_flaky < self.p_stable < 1.0:
            raise ValueError(
                "need 0 < p_flaky < p_stable < 1, got "
                f"p_flaky={self.p_flaky}, p_stable={self.p_stable}"
            )
        for name in ("alpha", "beta"):
            value = getattr(self, name)
            if not 0.0 < value < 0.5:
                raise ValueError(
                    f"{name} must be in (0, 0.5), got {value}"
                )
        if self.max_trials < 1:
            raise ValueError(
                f"max_trials must be >= 1, got {self.max_trials}"
            )

    @property
    def pass_increment(self) -> float:
        return math.log(self.p_flaky / self.p_stable)

    @property
    def fail_increment(self) -> float:
        return math.log((1.0 - self.p_flaky) / (1.0 - self.p_stable))

    @property
    def promote_boundary(self) -> float:
        return math.log(self.beta / (1.0 - self.alpha))

    @property
    def demote_boundary(self) -> float:
        return math.log((1.0 - self.beta) / self.alpha)


@dataclass
class SprtTest:
    """One running test; feed trials through :meth:`update`."""

    config: SprtConfig = field(default_factory=SprtConfig)
    trials: int = 0
    failures: int = 0
    llr: float = 0.0
    decision: Decision = Decision.UNDECIDED
    history: List[bool] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return (
            self.decision is not Decision.UNDECIDED
            or self.trials >= self.config.max_trials
        )

    @property
    def flake_rate(self) -> Optional[float]:
        if not self.trials:
            return None
        return self.failures / self.trials

    def update(self, passed: bool) -> Decision:
        """Record one trial; returns the (possibly still undecided)
        decision.  Calling after the test is done is an error — the
        SPRT's guarantees only cover the stopped sample."""
        if self.done:
            raise RuntimeError("SPRT already decided; no more trials")
        self.trials += 1
        self.history.append(bool(passed))
        if passed:
            self.llr += self.config.pass_increment
        else:
            self.failures += 1
            self.llr += self.config.fail_increment
        if self.llr <= self.config.promote_boundary:
            self.decision = Decision.PROMOTE
        elif self.llr >= self.config.demote_boundary:
            self.decision = Decision.DEMOTE
        return self.decision


def run_sprt(trial, config: Optional[SprtConfig] = None) -> SprtTest:
    """Drive ``trial(index) -> bool`` to a decision (or the trial
    cap); the convenience wrapper the burn-in driver uses."""
    test = SprtTest(config=config or SprtConfig())
    index = 0
    while not test.done:
        test.update(bool(trial(index)))
        index += 1
    return test
