"""Suite-wide configuration.

The only hook here delegates to the results-recording plugin, which
stays dormant unless ``REHEARSAL_RESULTS_DB`` points at a database
(see ``src/repro/testing/orchestrate/pytest_plugin.py``).  CI exports
the variable so every run lands in the uploaded results artifact;
local runs pay nothing.
"""

import os


def pytest_configure(config):
    if os.environ.get("REHEARSAL_RESULTS_DB"):
        from repro.testing.orchestrate import pytest_plugin

        pytest_plugin.install(config)
