"""Concrete filesystem states for the FS language (paper Fig. 5).

A filesystem maps paths to contents: either ``DIR`` or ``FileContent``.
States are immutable; updates return new states.  A distinguished
well-formedness notion (children imply directory parents) matches what
real machines provide and is what the logical encoding assumes of
*initial* states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Union

from repro.fs.paths import Path


@dataclass(frozen=True)
class Dir:
    """The content of a directory entry."""

    def __repr__(self) -> str:
        return "Dir"


@dataclass(frozen=True)
class FileContent:
    """The content of a regular file."""

    data: str

    def __repr__(self) -> str:
        return f"File({self.data!r})"


Content = Union[Dir, FileContent]

DIR = Dir()


class FileSystem:
    """An immutable map from paths to contents.

    The root path is implicitly a directory and is never stored in the
    map; ``lookup(Path.root())`` always returns ``DIR``.
    """

    __slots__ = ("_entries", "_hash")

    def __init__(self, entries: Optional[Mapping[Path, Content]] = None):
        items = dict(entries or {})
        items.pop(Path.root(), None)
        self._entries: dict[Path, Content] = items
        self._hash: Optional[int] = None

    # -- constructors -----------------------------------------------------

    @staticmethod
    def empty() -> "FileSystem":
        return _EMPTY

    @staticmethod
    def of(**kwargs: str) -> "FileSystem":
        """Convenience for tests: ``FileSystem.of(**{"/a": "dir", ...})``
        is awkward, so pass entries via :meth:`from_dict` instead."""
        raise NotImplementedError("use FileSystem.from_dict")

    @staticmethod
    def from_dict(entries: Mapping[str, Optional[str]]) -> "FileSystem":
        """Build a filesystem from ``{"/a": None, "/a/f": "text"}`` where
        ``None`` marks a directory and a string marks file content."""
        out: dict[Path, Content] = {}
        for raw, value in entries.items():
            path = Path.of(raw)
            out[path] = DIR if value is None else FileContent(value)
        return FileSystem(out)

    # -- queries -----------------------------------------------------------

    def lookup(self, path: Path) -> Optional[Content]:
        if path.is_root:
            return DIR
        return self._entries.get(path)

    def exists(self, path: Path) -> bool:
        return path.is_root or path in self._entries

    def is_dir(self, path: Path) -> bool:
        return isinstance(self.lookup(path), Dir)

    def is_file(self, path: Path) -> bool:
        return isinstance(self.lookup(path), FileContent)

    def file_content(self, path: Path) -> Optional[str]:
        entry = self.lookup(path)
        return entry.data if isinstance(entry, FileContent) else None

    def children(self, path: Path) -> Iterator[Path]:
        for p in self._entries:
            if p.is_child_of(path):
                yield p

    def has_children(self, path: Path) -> bool:
        return any(True for _ in self.children(path))

    def is_empty_dir(self, path: Path) -> bool:
        return self.is_dir(path) and not self.has_children(path)

    def paths(self) -> Iterator[Path]:
        return iter(self._entries)

    def is_well_formed(self) -> bool:
        """Every stored path's parent is a directory."""
        return all(
            self.is_dir(p.parent()) for p in self._entries
        )

    # -- updates -----------------------------------------------------------

    def with_entry(self, path: Path, content: Content) -> "FileSystem":
        if path.is_root:
            raise ValueError("cannot overwrite the root directory")
        items = dict(self._entries)
        items[path] = content
        return FileSystem(items)

    def without_entry(self, path: Path) -> "FileSystem":
        items = dict(self._entries)
        items.pop(path, None)
        return FileSystem(items)

    def restricted_to(self, paths: Iterable[Path]) -> "FileSystem":
        keep = set(paths)
        return FileSystem(
            {p: c for p, c in self._entries.items() if p in keep}
        )

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FileSystem):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._entries.items()))
        return self._hash

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        if not self._entries:
            return "FileSystem(empty)"
        rows = ", ".join(
            f"{p}={c!r}" for p, c in sorted(self._entries.items())
        )
        return f"FileSystem({rows})"

    def pretty(self) -> str:
        """Multi-line human-readable listing, sorted by path."""
        if not self._entries:
            return "(empty filesystem)"
        lines = []
        for p in sorted(self._entries):
            entry = self._entries[p]
            if isinstance(entry, Dir):
                lines.append(f"{p}/")
            else:
                lines.append(f"{p}  {entry.data!r}")
        return "\n".join(lines)


_EMPTY = FileSystem()
