"""Unit tests for the SAT-free static analyzer (``repro.analysis.lint``).

Covers the rule registry, per-rule emission, severity semantics
(including the REH006 demotion contract), the escalation guard, rule
disabling, the ``lint_prefilter`` fast path, the per-manifest lint row
in batch reports, and the ``rehearsal lint`` CLI exit-code contract.
"""

import json

import pytest

from repro.analysis.determinism import DeterminismOptions
from repro.analysis.lint import (
    Diagnostic,
    LintContext,
    LintOptions,
    LintReport,
    RULES,
    Severity,
    lint_graph,
    lint_source,
)
from repro.analysis.lint.engine import Rule, register_rule
from repro.core.cli import main as cli_main
from repro.core.pipeline import Rehearsal
from repro.corpus import load_source
from repro.fs.paths import Path as FsPath

# Hand-sized manifests exercising one rule each.
PARSE_ERROR = "file { bad"
DUPLICATE_DECL = (
    'file {"/etc/a.conf": content => "x" }\n'
    'file {"/etc/a.conf": content => "y" }'
)
MODEL_ERROR = 'file {"/etc/a.conf": ensure => "banana" }'
DUPLICATE_PATH = (
    'file {"one": path => "/etc/a.conf", content => "x" }\n'
    'file {"two": path => "/etc/a.conf", content => "y" }'
)
DEFINITE_RACE = (
    'file {"/etc/apache2/sites-available/default.conf": content => "z" }\n'
    'package {"apache2": ensure => present }'
)
DANGLING = 'file {"/etc/a.conf": content => "x", require => Package["nope"] }'
CYCLE = (
    'file {"/a": content => "x", require => File["/b"] }\n'
    'file {"/b": content => "y", require => File["/a"] }'
)
MISSING_PARENT = 'file {"/opt/deep/nested/file.conf": content => "x" }'
PROTECTED = 'file {"/etc/passwd": content => "pwned" }'
CLEAN = (
    'file {"/app": ensure => directory }\n'
    'file {"/app/a.conf": content => "x", require => File["/app"] }'
)


def rules_of(report: LintReport):
    return sorted({d.rule_id for d in report.diagnostics})


class TestRegistry:
    def test_catalogue_is_complete_and_stable(self):
        assert sorted(RULES) == [f"REH{n:03d}" for n in range(1, 12)]

    def test_severities(self):
        expected = {
            "REH001": Severity.ERROR,
            "REH002": Severity.ERROR,
            "REH003": Severity.ERROR,
            "REH004": Severity.ERROR,
            "REH005": Severity.ERROR,
            "REH006": Severity.WARNING,
            "REH007": Severity.ERROR,
            "REH008": Severity.ERROR,
            "REH009": Severity.NOTE,
            "REH010": Severity.WARNING,
            "REH011": Severity.WARNING,
        }
        assert {rid: r.severity for rid, r in RULES.items()} == expected

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_rule(
                Rule(
                    id="REH001",
                    name="clone",
                    severity=Severity.NOTE,
                    summary="dup",
                    description="dup",
                )
            )

    def test_severity_ordering_and_rendering(self):
        assert Severity.NOTE < Severity.WARNING < Severity.ERROR
        assert str(Severity.ERROR) == "error"
        assert Severity.NOTE.sarif_level == "note"
        assert Severity.WARNING.sarif_level == "warning"


class TestRules:
    @pytest.mark.parametrize(
        "source,rule_id",
        [
            (PARSE_ERROR, "REH001"),
            (DUPLICATE_DECL, "REH002"),
            (MODEL_ERROR, "REH003"),
            (DUPLICATE_PATH, "REH004"),
            (DEFINITE_RACE, "REH005"),
            (DANGLING, "REH007"),
            (CYCLE, "REH008"),
        ],
        ids=lambda v: v if isinstance(v, str) and v.startswith("REH") else "",
    )
    def test_error_rules_fire_and_exit_2(self, source, rule_id):
        report = lint_source(source, name="case.pp")
        assert rule_id in rules_of(report)
        assert report.max_severity == Severity.ERROR
        assert report.exit_code == 2
        assert not report.clean

    def test_missing_parent_is_a_note_and_clean(self):
        report = lint_source(MISSING_PARENT, name="parent.pp")
        assert rules_of(report) == ["REH009"]
        assert report.clean
        assert report.exit_code == 0

    def test_protected_write_needs_optin(self):
        quiet = lint_source(PROTECTED, name="prot.pp")
        assert "REH010" not in rules_of(quiet)
        report = lint_source(
            PROTECTED,
            name="prot.pp",
            options=LintOptions(protected=(FsPath.of("/etc/passwd"),)),
        )
        assert "REH010" in rules_of(report)
        assert report.exit_code == 1  # warning, not error

    def test_non_idempotent_program_flagged(self):
        # The resource model compiles to guarded (idempotent) programs,
        # so REH011 is exercised at the graph layer with a bare
        # unguarded creat: applying it twice errors (path exists).
        import networkx as nx

        from repro.fs import syntax as fx

        graph = nx.DiGraph()
        graph.add_node("raw")
        programs = {"raw": fx.Creat(FsPath.of("/x"), "c")}
        report = lint_graph(graph, programs, name="raw.pp")
        assert "REH011" in rules_of(report)

    def test_clean_manifest_is_clean(self):
        report = lint_source(CLEAN, name="clean.pp")
        assert report.diagnostics == []
        assert report.clean and report.exit_code == 0

    def test_definite_race_records_witness_and_pair(self):
        report = lint_source(DEFINITE_RACE, name="race.pp")
        assert len(report.race_witnesses) == 1
        witness = report.race_witnesses[0]
        assert witness.outcome_a != witness.outcome_b
        pairs = report.definite_race_pairs()
        assert len(pairs) == 1
        assert sorted(pairs[0]) == list(pairs[0])

    def test_spans_point_at_declarations(self):
        report = lint_source(DUPLICATE_PATH, name="dup.pp")
        dup = next(d for d in report.diagnostics if d.rule_id == "REH004")
        assert (dup.line, dup.col) == (2, 7)  # the later claimant
        assert dup.related and dup.related[0].line == 1


class TestDemotion:
    """REH006 candidates surviving a complete confirmation sweep are
    notes, not warnings — 'clean' means no *actionable* diagnostics."""

    def test_surviving_candidates_demote_to_note(self):
        report = lint_source(load_source("irc-fixed"), name="irc-fixed.pp")
        sixes = [d for d in report.diagnostics if d.rule_id == "REH006"]
        assert sixes, "irc-fixed has non-commuting but benign pairs"
        assert all(d.severity == Severity.NOTE for d in sixes)
        assert report.clean and report.exit_code == 0

    def test_without_confirmation_they_stay_warnings(self):
        report = lint_source(
            load_source("irc-fixed"),
            name="irc-fixed.pp",
            options=LintOptions(confirm_races=False),
        )
        sixes = [d for d in report.diagnostics if d.rule_id == "REH006"]
        assert sixes
        assert all(d.severity == Severity.WARNING for d in sixes)
        assert report.exit_code == 1

    def test_escalation_above_rule_severity_rejected(self):
        ctx = LintContext(
            name="x.pp",
            options=LintOptions(),
            report=LintReport(name="x.pp"),
        )
        with pytest.raises(ValueError):
            ctx.diag(
                "REH009",  # a NOTE rule
                "boom",
                severity=Severity.ERROR,
            )


class TestDisabling:
    def test_disabled_rules_do_not_fire(self):
        report = lint_source(
            MISSING_PARENT,
            name="parent.pp",
            options=LintOptions(disabled=("REH009",)),
        )
        assert report.diagnostics == []

    def test_other_rules_unaffected(self):
        report = lint_source(
            DEFINITE_RACE,
            name="race.pp",
            options=LintOptions(disabled=("REH009",)),
        )
        assert "REH005" in rules_of(report)


class TestReportShape:
    def test_render_mentions_the_sat_free_contract(self):
        report = lint_source(CLEAN, name="clean.pp")
        assert "0 SAT queries" in report.render()

    def test_diagnostic_render_format(self):
        diag = Diagnostic(
            rule_id="REH005",
            rule_name="definite-race",
            severity=Severity.ERROR,
            message="boom",
            file="m.pp",
            line=3,
            col=7,
        )
        assert diag.render() == "m.pp:3:7: error REH005 [definite-race] boom"

    def test_to_dict_round_trips_to_json(self):
        report = lint_source(DEFINITE_RACE, name="race.pp")
        data = json.loads(json.dumps(report.to_dict()))
        assert data["name"] == "race.pp"
        assert data["clean"] is False
        assert data["exit_code"] == 2
        assert data["counts"]["error"] >= 1
        assert data["stats"]["races_confirmed"] >= 1
        assert all(
            {"rule_id", "severity", "line", "col"} <= set(d)
            for d in data["diagnostics"]
        )


class TestPrefilter:
    """``DeterminismOptions.lint_prefilter``: when every unordered pair
    commutes the determinism verdict is proved without symbolic
    exploration or SAT — and verdicts never change either way."""

    def test_proves_deterministic_corpus_without_sat(self):
        tool = Rehearsal(options=DeterminismOptions(lint_prefilter=True))
        report = tool.verify(load_source("amavis"), name="amavis")
        det = report.determinism
        assert det.deterministic is True
        assert det.stats.prefilter_proved
        assert det.stats.sat_queries == 0
        assert det.stats.branches_explored == 0

    def test_does_not_change_nondet_verdicts(self):
        source = load_source("ntp-nondet")
        plain = Rehearsal().verify(source, name="ntp")
        fast = Rehearsal(
            options=DeterminismOptions(lint_prefilter=True)
        ).verify(source, name="ntp")
        assert plain.deterministic is False
        assert fast.deterministic is False
        assert not fast.determinism.stats.prefilter_proved

    def test_off_by_default(self):
        report = Rehearsal().verify(load_source("amavis"), name="amavis")
        assert not report.determinism.stats.prefilter_proved


class TestBatchLintRow:
    def test_verify_batch_rows_carry_lint_verdicts(self, tmp_path):
        (tmp_path / "clean.pp").write_text(CLEAN)
        (tmp_path / "race.pp").write_text(DEFINITE_RACE)
        out = tmp_path / "report.json"
        cli_main(
            [
                "verify-batch",
                str(tmp_path),
                "--no-cache",
                "--json",
                str(out),
            ]
        )
        data = json.loads(out.read_text())
        assert data["schema_version"] == 5
        rows = {r["name"].rsplit("/", 1)[-1]: r for r in data["results"]}
        assert rows["clean.pp"]["lint"]["clean"] is True
        assert rows["race.pp"]["lint"]["clean"] is False
        assert any(
            d["rule_id"] == "REH005"
            for d in rows["race.pp"]["lint"]["diagnostics"]
        )


class TestCli:
    def lint(self, *argv):
        return cli_main(["lint", *map(str, argv)])

    def test_exit_0_on_clean(self, tmp_path, capsys):
        path = tmp_path / "clean.pp"
        path.write_text(CLEAN)
        assert self.lint(path) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_1_on_warnings(self, tmp_path):
        path = tmp_path / "prot.pp"
        path.write_text(PROTECTED)
        assert self.lint(path, "--protect", "/etc/passwd") == 1

    def test_exit_2_on_errors(self, tmp_path, capsys):
        path = tmp_path / "race.pp"
        path.write_text(DEFINITE_RACE)
        assert self.lint(path) == 2
        assert "REH005" in capsys.readouterr().out

    def test_exit_3_on_bad_invocation(self, tmp_path):
        assert self.lint(tmp_path / "missing.pp") == 3

    def test_json_format(self, tmp_path, capsys):
        path = tmp_path / "race.pp"
        path.write_text(DEFINITE_RACE)
        assert self.lint(path, "--format", "json") == 2
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == 1
        assert [m["name"] for m in data["manifests"]] == [str(path)]

    def test_disable_flag(self, tmp_path):
        path = tmp_path / "parent.pp"
        path.write_text(MISSING_PARENT)
        assert self.lint(path, "--disable", "REH009") == 0
