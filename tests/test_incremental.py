"""The persistent incremental store (docs/incremental.md).

The contract under test: an incremental run produces byte-identical
verdicts, witnesses, and race localizations to a from-scratch run —
with the store hot, cold, corrupted, or version-rotated — and a warm
re-verify actually reuses recorded work (the counters prove it).
"""

import json
import os
import subprocess
import sys

import pytest

from repro import DeterminismOptions, Rehearsal
from repro.corpus import BENCHMARK_NAMES, FIXED_VARIANTS, load_source
from repro.logic.terms import TermBank, structural_digest
from repro.service.incremental import (
    IncrementalStore,
    check_idempotence_incremental,
    default_store_path,
    expr_digest,
    open_store,
    reset_store_registry,
)
from repro.service.schema import ManifestResult

ALL_MANIFESTS = list(BENCHMARK_NAMES) + sorted(FIXED_VARIANTS)

#: Row fields that legitimately differ between an incremental and a
#: from-scratch run: timings, cache bookkeeping, and the reuse
#: counters themselves (they describe the run, not the verdict).
RUN_CIRCUMSTANCE_FIELDS = (
    "seconds",
    "solver_seconds",
    "cached",
    "cache_key",
    "subtree_reuse_hits",
    "cnf_cache_hits",
    "commute_cache_hits",
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Each test gets its own store handles; close them afterwards so
    temp directories can be deleted on every platform."""
    reset_store_registry()
    yield
    reset_store_registry()


def normalized_row(report, name: str) -> dict:
    row = ManifestResult.from_report(report).to_dict()
    for field in RUN_CIRCUMSTANCE_FIELDS:
        row.pop(field, None)
    row["name"] = name
    return row


def verify(source: str, options: DeterminismOptions, name="m.pp"):
    return Rehearsal(options=options).verify(source, name=name)


def scratch_options() -> DeterminismOptions:
    # Explicit, so the suite stays honest under REHEARSAL_INCREMENTAL=1
    # (the CI matrix cell that forces the store on).
    return DeterminismOptions(incremental=False)


def incremental_options(directory) -> DeterminismOptions:
    return DeterminismOptions(incremental=True, incremental_dir=str(directory))


# -- fingerprint stability ----------------------------------------------------


class TestStructuralDigest:
    def test_same_formula_same_digest_across_banks(self):
        def build(bank, flip):
            a, b, c = bank.var("a"), bank.var("b"), bank.var("c")
            if flip:  # different construction order, same formula
                return bank.and_(bank.or_(c, b), a)
            return bank.and_(a, bank.or_(b, c))

        b1, b2 = TermBank(), TermBank()
        assert b1.digest(build(b1, False)) == b2.digest(build(b2, True))

    def test_distinct_formulas_distinct_digests(self):
        bank = TermBank()
        a, b = bank.var("a"), bank.var("b")
        seen = {
            bank.digest(t)
            for t in (
                a,
                b,
                bank.and_(a, b),
                bank.or_(a, b),
                bank.not_(a),
                bank.TRUE,
                bank.FALSE,
            )
        }
        assert len(seen) == 7

    def test_memoized_digest_matches_standalone(self):
        bank = TermBank()
        t = bank.and_(bank.var("x"), bank.not_(bank.var("y")))
        assert bank.digest(t) == structural_digest(t)

    def test_expr_digest_tracks_program_content(self):
        from repro.fs import creat

        assert expr_digest(creat("/a", "one")) == expr_digest(
            creat("/a", "one")
        )
        assert expr_digest(creat("/a", "one")) != expr_digest(
            creat("/a", "two")
        )


# -- the store itself ---------------------------------------------------------


class TestIncrementalStore:
    def test_round_trip_and_batch(self, tmp_path):
        store = IncrementalStore(tmp_path / "s.sqlite")
        store.put("cnf", "k1", "v1")
        store.put_many("cnf", [("k2", "v2"), ("k3", "v3")])
        assert store.get("cnf", "k1") == "v1"
        assert store.get_many("cnf", ["k1", "k2", "k3", "nope"]) == {
            "k1": "v1",
            "k2": "v2",
            "k3": "v3",
        }
        assert store.get("other-section", "k1") is None
        store.close()

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "s.sqlite"
        store = IncrementalStore(path)
        store.put_json("idem", "k", {"x": 1})
        store.close()
        again = IncrementalStore(path)
        assert again.get_json("idem", "k") == {"x": 1}
        again.close()

    def test_version_rotation_empties_the_store(self, tmp_path, monkeypatch):
        import repro.service.incremental as inc_mod

        path = tmp_path / "s.sqlite"
        store = IncrementalStore(path)
        store.put("cnf", "k", "v")
        store.close()
        monkeypatch.setattr(
            inc_mod, "STORE_VERSION", inc_mod.STORE_VERSION + 1
        )
        rotated = IncrementalStore(path)
        assert rotated.get("cnf", "k") is None
        assert not rotated.disabled
        rotated.close()

    def test_garbage_file_is_recreated(self, tmp_path):
        path = tmp_path / "s.sqlite"
        path.write_bytes(b"this is not a sqlite database at all\x00\xff")
        store = IncrementalStore(path)
        assert not store.disabled
        store.put("cnf", "k", "v")
        assert store.get("cnf", "k") == "v"
        store.close()

    def test_unwritable_location_disables_not_crashes(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        store = IncrementalStore(blocker / "s.sqlite")
        assert store.disabled
        assert store.get("cnf", "k") is None
        store.put("cnf", "k", "v")  # must not raise
        assert store.stats()["entries"] == 0
        assert store.clear() == 0
        assert store.gc(0) == 0

    def test_gc_evicts_oldest_first(self, tmp_path):
        store = IncrementalStore(tmp_path / "s.sqlite")
        store.put("cnf", "old", "x" * 100)
        store.put("cnf", "new", "y" * 100)
        removed = store.gc(150)
        assert removed == 1
        assert store.get("cnf", "old") is None
        assert store.get("cnf", "new") is not None
        store.close()

    def test_default_store_path_honors_cache_dir_env(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REHEARSAL_CACHE_DIR", str(tmp_path))
        assert default_store_path(None).parent == tmp_path

    def test_open_store_registry_reuses_handles(self, tmp_path):
        a = open_store(str(tmp_path))
        b = open_store(str(tmp_path))
        assert a is b


# -- verdict parity: incremental vs. from-scratch -----------------------------


class TestCorpusParity:
    @pytest.mark.parametrize("name", ALL_MANIFESTS)
    def test_rows_byte_identical_cold_and_warm(self, name, tmp_path):
        source = load_source(name)
        opts = incremental_options(tmp_path)
        baseline = normalized_row(
            verify(source, scratch_options(), name), name
        )
        cold = normalized_row(verify(source, opts, name), name)
        reset_store_registry()  # force re-open: simulates a new process
        warm_report = verify(source, opts, name)
        warm = normalized_row(warm_report, name)
        assert cold == baseline
        assert warm == baseline
        # The warm run actually reused the store, it didn't just agree.
        stats = warm_report.determinism.stats
        assert (
            stats.subtree_reuse_hits
            + stats.cnf_cache_hits
            + stats.commute_cache_hits
            > 0
        )

    def test_nondet_race_localization_is_identical(self, tmp_path):
        source = load_source("ntp-nondet")
        opts = incremental_options(tmp_path)
        base = verify(source, scratch_options()).determinism
        verify(source, opts)
        reset_store_registry()
        served = verify(source, opts).determinism
        assert served.stats.subtree_reuse_hits >= 1
        assert not served.deterministic
        assert str(served.race.resource_a) == str(base.race.resource_a)
        assert str(served.race.resource_b) == str(base.race.resource_b)
        assert str(served.race.path) == str(base.race.path)
        assert served.witness_fs == base.witness_fs
        assert served.witness_orders == base.witness_orders
        assert served.witness_outcomes == base.witness_outcomes


# -- degradation: a damaged store can cost time, never a verdict --------------


class TestDegradation:
    def test_corrupted_store_file_still_verifies_correctly(self, tmp_path):
        source = load_source("ntp-fixed")
        opts = incremental_options(tmp_path)
        baseline = normalized_row(verify(source, scratch_options()), "m")
        verify(source, opts)
        reset_store_registry()
        default_store_path(str(tmp_path)).write_bytes(b"\x00garbage\xff" * 64)
        assert normalized_row(verify(source, opts), "m") == baseline

    def test_store_deleted_mid_run_still_verifies(self, tmp_path):
        source = load_source("bind")
        opts = incremental_options(tmp_path)
        verify(source, opts)
        # The open handle survives the unlink (POSIX); the next run
        # must neither crash nor serve anything wrong.
        default_store_path(str(tmp_path)).unlink()
        baseline = normalized_row(verify(source, scratch_options()), "m")
        assert normalized_row(verify(source, opts), "m") == baseline

    def test_damaged_entries_are_misses_not_crashes(self, tmp_path):
        source = load_source("clamav")
        opts = incremental_options(tmp_path)
        baseline = normalized_row(verify(source, scratch_options()), "m")
        verify(source, opts)
        store = open_store(str(tmp_path))
        rows = []
        for section in (
            "cnf",
            "commute",
            "idem",
            "idem_full",
            "explore",
            "det_root",
        ):
            rows.append((section, "not json {"))
        with store._lock:
            store._conn.executemany(
                "UPDATE entries SET value = ? WHERE section = ?",
                [(v, s) for s, v in rows],
            )
            store._conn.commit()
        reset_store_registry()
        assert normalized_row(verify(source, opts), "m") == baseline


# -- the idempotence decomposition --------------------------------------------


class TestIdempotenceDecomposition:
    def test_decomposition_matches_scratch_on_commuting_catalog(
        self, tmp_path
    ):
        from repro.analysis.idempotence import check_idempotence

        source = "\n".join(
            f"file {{ '/etc/app/c{i}.cfg': content => 'v{i}' }}"
            for i in range(6)
        )
        tool = Rehearsal()
        graph, programs = tool.compile(source)
        opts = incremental_options(tmp_path)
        scratch = check_idempotence(graph, programs)
        cold = check_idempotence_incremental(graph, programs, opts)
        warm = check_idempotence_incremental(graph, programs, opts)
        assert cold.idempotent == scratch.idempotent
        assert warm.idempotent == scratch.idempotent
        assert cold.witness_fs == scratch.witness_fs
        assert warm.witness_fs == scratch.witness_fs

    def test_non_idempotent_resource_falls_back_exactly(self, tmp_path):
        # All pairs commute (disjoint paths), but one resource is a
        # toggle — not idempotent — so tier 2's per-resource check
        # fails and tier 3 must reproduce the exact scratch witness,
        # cold and from the recorded idem_full entry.
        import networkx as nx

        from repro.analysis.idempotence import check_idempotence
        from repro.fs import Path, creat, file_, ite, rm

        p = Path.of("/toggle")
        programs = {
            "toggle": ite(file_(p), rm(p), creat(p, "x")),
            "plain": creat("/other", "y"),
        }
        graph = nx.DiGraph()
        graph.add_nodes_from(programs)
        opts = incremental_options(tmp_path)
        scratch = check_idempotence(graph, programs)
        assert not scratch.idempotent
        cold = check_idempotence_incremental(graph, programs, opts)
        warm = check_idempotence_incremental(graph, programs, opts)
        for result in (cold, warm):
            assert result.idempotent == scratch.idempotent
            assert result.witness_fs == scratch.witness_fs

    def test_decomposition_negative_case_matches_scratch(self, tmp_path):
        # A shared path breaks all-pairs commutativity: the
        # decomposition must not conclude, and the fallback verdict
        # (and witness) must equal the from-scratch one.
        from repro.analysis.idempotence import check_idempotence

        source = (
            "file { '/etc/x.conf': content => 'a' }\n"
            "package { 'x': ensure => installed }\n"
        )
        tool = Rehearsal()
        graph, programs = tool.compile(source)
        opts = incremental_options(tmp_path)
        scratch = check_idempotence(graph, programs)
        cold = check_idempotence_incremental(graph, programs, opts)
        warm = check_idempotence_incremental(graph, programs, opts)
        assert cold.idempotent == scratch.idempotent
        assert cold.witness_fs == scratch.witness_fs
        assert warm.idempotent == scratch.idempotent
        assert warm.witness_fs == scratch.witness_fs


# -- cross-process rehydration ------------------------------------------------


_SUBPROCESS_SCRIPT = """
import json, sys
from repro import DeterminismOptions, Rehearsal

source = open(sys.argv[1], encoding="utf8").read()
options = DeterminismOptions(incremental=True, incremental_dir=sys.argv[2])
report = Rehearsal(options=options).verify(source, name="m.pp")
stats = report.determinism.stats
race = report.determinism.race
print(json.dumps({
    "deterministic": report.deterministic,
    "idempotent": report.idempotent,
    "race": [str(race.resource_a), str(race.resource_b), str(race.path)]
        if race is not None else None,
    "reuse": stats.subtree_reuse_hits + stats.cnf_cache_hits
        + stats.commute_cache_hits,
}))
"""


class TestCrossProcess:
    @pytest.mark.parametrize("name", ["ntp-fixed", "ntp-nondet"])
    def test_new_process_rehydrates_identical_verdict(self, name, tmp_path):
        manifest = tmp_path / "m.pp"
        manifest.write_text(load_source(name), encoding="utf8")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath("src")] + sys.path
        )

        def run():
            proc = subprocess.run(
                [
                    sys.executable,
                    "-c",
                    _SUBPROCESS_SCRIPT,
                    str(manifest),
                    str(tmp_path / "store"),
                ],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            return json.loads(proc.stdout)

        first = run()
        second = run()
        assert first["reuse"] == 0 or first["deterministic"] is not None
        assert second["reuse"] > 0, "second process must hit the store"
        for key in ("deterministic", "idempotent", "race"):
            assert first[key] == second[key]


# -- the warm developer loop --------------------------------------------------


class TestEditLatency:
    def test_one_resource_edit_reuses_untouched_resources(self, tmp_path):
        from repro.bench.harness import edit_latency_catalog

        n = 12
        base = edit_latency_catalog(n)
        edited = edit_latency_catalog(n, edited=True)
        opts = incremental_options(tmp_path)
        cold = verify(base, opts)
        assert cold.ok
        reset_store_registry()
        warm = verify(edited, opts)
        assert warm.ok
        stats = warm.determinism.stats
        # Every untouched resource's idempotence verdict is served.
        assert stats.subtree_reuse_hits >= n - 2
        scratch = verify(edited, scratch_options())
        assert normalized_row(warm, "m") == normalized_row(scratch, "m")


# -- the cache CLI ------------------------------------------------------------


class TestCacheCli:
    def run_cli(self, *argv):
        from repro.core.cli import main

        return main(list(argv))

    def test_stats_clear_gc(self, tmp_path, capsys):
        source_path = tmp_path / "m.pp"
        source_path.write_text(load_source("bind"), encoding="utf8")
        assert (
            self.run_cli(
                "verify",
                str(source_path),
                "--incremental",
                "--incremental-dir",
                str(tmp_path / "cache"),
            )
            == 0
        )
        reset_store_registry()

        assert (
            self.run_cli("cache", "--cache-dir", str(tmp_path / "cache"), "stats")
            == 0
        )
        out = capsys.readouterr().out
        assert "incremental store" in out
        assert "idem_full: 1 row(s)" in out

        assert (
            self.run_cli(
                "cache",
                "--cache-dir",
                str(tmp_path / "cache"),
                "gc",
                "--max-bytes",
                "0",
            )
            == 0
        )
        assert "incremental row(s)" in capsys.readouterr().out

        assert (
            self.run_cli("cache", "--cache-dir", str(tmp_path / "cache"), "clear")
            == 0
        )
        reset_store_registry()
        store = IncrementalStore(default_store_path(str(tmp_path / "cache")))
        assert store.stats()["entries"] == 0
        store.close()

    def test_gc_rejects_negative_budget(self, tmp_path):
        assert (
            self.run_cli(
                "cache",
                "--cache-dir",
                str(tmp_path),
                "gc",
                "--max-bytes",
                "-1",
            )
            == 2
        )


# -- cache-key discipline -----------------------------------------------------


class TestCacheKeyDiscipline:
    def test_incremental_options_share_verdict_cache_entries(self):
        from repro.service.cache import cache_key

        src = "file { '/f': }"
        assert cache_key(src, DeterminismOptions(incremental=False)) == (
            cache_key(
                src,
                DeterminismOptions(
                    incremental=True, incremental_dir="/anywhere"
                ),
            )
        )
