"""ddmin edge cases for the fuzz shrinker (`repro.testing.shrink`).

The shrinker's contract: given a case satisfying the predicate,
return a no-larger case that still satisfies it — and never crash,
even when candidate reductions break parsing or the predicate itself
throws.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.puppet.parser import parse_manifest
from repro.testing.generate import (
    CaseGenerator,
    GeneratedCase,
    ResourceSpec,
)
from repro.testing.shrink import shrink_case


def make_case(specs) -> GeneratedCase:
    return GeneratedCase(
        master_seed=0,
        case_id=0,
        case_seed=0,
        bug="synthetic",
        resources=list(specs),
    )


def file_spec(title, path, content="x", requires=()):
    return ResourceSpec(
        rtype="file",
        title=title,
        attributes=(("path", path), ("content", content)),
        requires=tuple(requires),
    )


def shared_write_paths(case) -> bool:
    """The structural classification the property test preserves: two
    file resources manage the same path."""
    paths = [
        value
        for spec in case.resources
        if spec.rtype == "file"
        for key, value in spec.attributes
        if key == "path"
    ]
    return len(paths) != len(set(paths))


class TestSingleResource:
    def test_one_resource_catalog_is_already_minimal(self):
        case = make_case([file_spec("a", "/tmp/a")])
        shrunk, attempts = shrink_case(case, lambda c: True)
        # _without_resource refuses to empty the catalog, and no edge
        # or optional attribute exists to drop.
        assert shrunk.resources == case.resources
        assert attempts == 0

    def test_one_resource_content_still_shrinks(self):
        case = make_case([file_spec("a", "/tmp/a", content="abcdef")])
        shrunk, _ = shrink_case(case, lambda c: True)
        assert dict(shrunk.resources[0].attributes)["content"] == "a"


class TestAlreadyMinimal:
    def test_strict_predicate_returns_the_original(self):
        case = make_case(
            [
                file_spec("a", "/tmp/shared"),
                file_spec("b", "/tmp/shared"),
            ]
        )
        shrunk, attempts = shrink_case(case, shared_write_paths)
        assert len(shrunk.resources) == 2
        assert shared_write_paths(shrunk)
        assert attempts > 0  # it tried, nothing smaller reproduced

    def test_attempt_budget_is_respected(self):
        case = make_case(
            [file_spec(f"r{i}", f"/tmp/{i}") for i in range(5)]
        )
        calls = []

        def predicate(c):
            calls.append(1)
            return False

        shrink_case(case, predicate, max_attempts=7)
        assert len(calls) <= 7


class TestHostilePredicates:
    def test_raising_predicate_counts_as_not_reproducing(self):
        case = make_case(
            [file_spec("a", "/tmp/a"), file_spec("b", "/tmp/b")]
        )

        def explosive(c):
            raise RuntimeError("toolchain crash on candidate")

        shrunk, _ = shrink_case(case, explosive)
        assert shrunk.resources == case.resources

    def test_candidate_parse_errors_do_not_escape(self):
        """A predicate that parses the candidate's printed source —
        the shape every real fuzz predicate has.  Reductions that
        somehow produce unparseable manifests must register as
        non-reproducing, not crash the shrink."""
        case = make_case(
            [
                file_spec("a", "/tmp/shared"),
                file_spec("b", "/tmp/shared"),
                file_spec("c", "/tmp/other"),
            ]
        )

        def parsing_predicate(c):
            parse_manifest(c.source)  # raises on a broken candidate
            if len(c.resources) < 2:
                raise ValueError("degenerate candidate")
            return shared_write_paths(c)

        shrunk, _ = shrink_case(case, parsing_predicate)
        assert shared_write_paths(shrunk)
        assert len(shrunk.resources) == 2  # 'c' was shed
        parse_manifest(shrunk.source)


class TestShrinkProperty:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_shrunk_output_still_reproduces_the_classification(
        self, seed
    ):
        """For generator-produced cases: whatever structural
        classification held before shrinking holds after, and the
        result never grew."""
        case = CaseGenerator(seed).generate(0)
        classification = shared_write_paths(case)

        def predicate(c):
            return shared_write_paths(c) == classification

        shrunk, attempts = shrink_case(case, predicate)
        assert shared_write_paths(shrunk) == classification
        assert len(shrunk.resources) <= len(case.resources)
        assert attempts <= 300
        # The shrunk case still serializes to a parseable manifest —
        # it has to, or it could never be committed as a reproducer.
        parse_manifest(shrunk.source)
