# clamav — antivirus scanner and daemon (§6 benchmark "clamav").
#
# Exercises inter-package dependencies (clamav-daemon depends on the
# clamav engine, so the two resources must be explicitly ordered), a
# cron job for signature updates, and resource defaults.

class clamav {
  # Resource defaults: every file in this manifest is root-owned.
  File {
    owner => 'root',
    group => 'root',
    mode  => '0644',
  }

  Cron {
    user => 'root',
  }

  $mirror = 'db.local.clamav.net'

  package { 'clamav':
    ensure => installed,
  }

  # The daemon package pulls in the engine: without this edge the two
  # installs race over the shared engine payload.
  package { 'clamav-daemon':
    ensure  => installed,
    require => Package['clamav'],
  }

  file { '/etc/clamav/freshclam.conf':
    ensure  => file,
    content => "# managed by puppet\nDatabaseMirror ${mirror}\nChecks 24\nNotifyClamd /etc/clamav/clamd.conf\n",
    require => [Package['clamav'], Package['clamav-daemon']],
  }

  cron { 'freshclam-refresh':
    command => '/usr/bin/freshclam --quiet',
    minute  => 15,
    hour    => 2,
    require => Package['clamav'],
  }

  service { 'clamav-daemon':
    ensure    => running,
    enable    => true,
    require   => Package['clamav-daemon'],
    subscribe => File['/etc/clamav/freshclam.conf'],
  }
}

include clamav
