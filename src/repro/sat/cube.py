"""Cube-and-conquer scheduling primitives.

Cube-and-conquer splits a search problem into *cubes* — disjoint
sub-problems fixed by a prefix of choices — conquers each
independently, and merges.  For Rehearsal the search space is the
reachable-state DAG of :mod:`repro.analysis.determinism`: a cube is
one choice of first resource at the exploration root, and conquering
a cube explores its subtree and races its final states against the
canonical base order.

This module is deliberately generic (it knows nothing about symbolic
states or resource graphs — the analysis layer owns that), so the
scheduling policy stays small enough to reason about:

* :func:`schedule` runs cube payloads **in index order** when
  ``workers == 1`` and across a thread pool otherwise, but in both
  cases the *answer* is chosen by cube index, never by completion
  time — the merge of a parallel run is identical to the serial one;
* :func:`merge_stats` sums the numeric fields of per-cube stats
  dataclasses into one.

Threads rather than processes: cube payloads close over the analysis
session's term bank and solver, which are address-space objects with
no useful pickled form.  Process-level parallelism lives one level up
(the batch orchestrator fans manifests out over a process pool, and
the portfolio backend races helper solvers over one), so cube
scheduling targets the intra-manifest case where shared state is the
point.  CPython's GIL caps the wall-clock win for pure-Python cube
payloads; the ordering/merging guarantees are what the analysis layer
actually buys here.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")


@dataclasses.dataclass(frozen=True)
class Cube(Generic[T]):
    """One sub-problem: the ``index`` fixes its merge priority (lower
    wins ties), ``choice`` is the branching decision that defines it,
    and ``prefix`` the decisions already applied above it."""

    index: int
    choice: T
    prefix: Tuple[T, ...] = ()


def split_frontier(
    choices: Sequence[T], prefix: Sequence[T] = ()
) -> List[Cube[T]]:
    """One cube per frontier choice, in the given (deterministic)
    order — the caller is expected to have sorted ``choices`` by its
    canonical key already."""
    pre = tuple(prefix)
    return [Cube(i, choice, pre) for i, choice in enumerate(choices)]


def schedule(
    cubes: Sequence[Cube[T]],
    run_one: Callable[[Cube[T]], R],
    workers: int = 1,
    stop_when: Optional[Callable[[R], bool]] = None,
) -> List[R]:
    """Conquer every cube; returns results in cube-index order.

    ``stop_when(result)`` (optional) short-circuits: once the
    lowest-indexed *remaining* cube's result satisfies it, higher
    cubes are abandoned.  Crucially the check walks results in index
    order even under a pool, so which cubes get cut off — and
    therefore the returned list — does not depend on timing.

    ``workers > 1`` runs payloads on a thread pool (see the module
    docstring for why threads); a payload that raises propagates the
    exception after the pool drains, exactly like the serial loop.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cubes = list(cubes)
    if workers == 1 or len(cubes) <= 1:
        results: List[R] = []
        for cube in cubes:
            result = run_one(cube)
            results.append(result)
            if stop_when is not None and stop_when(result):
                break
        return results
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(
        max_workers=min(workers, len(cubes))
    ) as pool:
        futures = [pool.submit(run_one, cube) for cube in cubes]
        results = []
        stopped = False
        for future in futures:
            if stopped:
                future.cancel()
                continue
            results.append(future.result())
            if stop_when is not None and stop_when(results[-1]):
                stopped = True
    return results


def merge_stats(parts: Sequence[object], into: object) -> object:
    """Sum every numeric field of the per-cube stats dataclasses into
    ``into`` (mutated and returned).  Booleans are OR-ed; other field
    types are left to the caller."""
    for part in parts:
        for field in dataclasses.fields(part):
            value = getattr(part, field.name)
            if isinstance(value, bool):
                if value:
                    setattr(into, field.name, True)
            elif isinstance(value, (int, float)):
                setattr(
                    into, field.name, getattr(into, field.name) + value
                )
    return into
