"""Tests for the reachable-state-DAG exploration (§4's Φ_G walk,
rewritten from the O(n!) order tree to a worklist memoized on
``(frozenset(remaining), state fingerprint)``).

Covers the fingerprint layer, the memo/dedup counters, the guarantee
that deduplication never drops a diverging final, and the key
meta-property: the memoized exploration and a naive order-enumerating
oracle (``use_memoization=False``) agree on the determinism verdict
and produce concretely-validating witnesses.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.determinism import (
    DeterminismOptions,
    check_determinism,
)
from repro.bench.harness import (
    conflicting_write,
    fig13_lattice_bound,
    synthetic_conflict_graph,
)
from repro.core.pipeline import Rehearsal
from repro.corpus import load_source
from repro.errors import AnalysisBudgetExceeded
from repro.fs import ID, Path, creat, eval_expr, file_, ite, mkdir, rm, seq
from repro.logic.terms import TermBank
from repro.smt.encoder import apply_expr
from repro.smt.state import initial_state
from repro.smt.values import PathDomains

#: The order-enumerating oracle: no memoization and no reductions, so
#: the exploration is exactly the tree of all linearizations.
NAIVE = DeterminismOptions(
    use_memoization=False,
    use_commutativity=False,
    use_pruning=False,
    use_elimination=False,
)


def build_graph(programs, edges=()):
    g = nx.DiGraph()
    g.add_nodes_from(programs)
    g.add_edges_from(edges)
    return g, programs


def assert_witness_diverges(result, programs):
    """A non-deterministic verdict must come with a concretely
    validating witness: the two orders genuinely differ on it."""
    assert result.witness_fs is not None
    assert result.witness_orders is not None
    order1, order2 = result.witness_orders
    e1 = seq(*[programs[n] for n in order1])
    e2 = seq(*[programs[n] for n in order2])
    assert eval_expr(e1, result.witness_fs) != eval_expr(
        e2, result.witness_fs
    )


class TestFingerprints:
    def _state(self):
        bank = TermBank()
        exprs = [conflicting_write("/shared", "a")]
        domains = PathDomains.for_exprs(exprs)
        return bank, domains, initial_state(bank, domains)

    def test_fingerprint_is_cached(self):
        _, _, state = self._state()
        assert state.fingerprint() is state.fingerprint()

    def test_same_program_same_fingerprint(self):
        """apply_expr is deterministic over a hash-consing bank, so
        re-applying the same program yields a distinct state object
        with an identical fingerprint — the property the memo key
        relies on."""
        bank, _, state = self._state()
        expr = conflicting_write("/shared", "a")
        s1 = apply_expr(bank, state, expr)
        s2 = apply_expr(bank, state, expr)
        assert s1 is not s2
        assert s1.fingerprint() == s2.fingerprint()

    def test_different_content_different_fingerprint(self):
        bank = TermBank()
        e1 = conflicting_write("/shared", "a")
        e2 = conflicting_write("/shared", "b")
        domains = PathDomains.for_exprs([e1, e2])
        init = initial_state(bank, domains)
        assert (
            apply_expr(bank, init, e1).fingerprint()
            != apply_expr(bank, init, e2).fingerprint()
        )

    def test_initial_state_differs_from_written_state(self):
        bank, _, state = self._state()
        after = apply_expr(
            bank, state, conflicting_write("/shared", "a")
        )
        assert state.fingerprint() != after.fingerprint()


class TestMemoizedExploration:
    def test_fig13_collapses_to_state_lattice(self):
        """n unordered conflicting writers: states are (subset, last
        writer) pairs, so branches stay on the subset/state lattice —
        far under the sum_k n!/(n-k)! order tree — and finals dedup
        to one per last writer."""
        g, p = synthetic_conflict_graph(4)
        result = check_determinism(g, p)
        stats = result.stats
        assert not result.deterministic
        assert stats.branches_explored <= fig13_lattice_bound(4)  # 52
        assert stats.memo_hits > 0
        assert stats.states_merged > 0
        assert stats.distinct_finals == 4
        assert_witness_diverges(result, p)

    def test_dedup_never_drops_the_diverging_final(self):
        """Deduplication by fingerprint can only merge symbolically
        identical states, so a genuinely diverging final always
        survives to the SAT loop with a witness order attached."""
        g, p = synthetic_conflict_graph(3)
        result = check_determinism(g, p)
        assert not result.deterministic
        assert result.stats.distinct_finals == 3
        assert result.stats.memo_hits > 0
        assert_witness_diverges(result, p)

    def test_identical_writers_merge_without_any_sat_query(self):
        """Two writers of the *same* content semantically commute but
        syntactically conflict: every interleaving converges to one
        final state, so determinism is proved by dedup alone — the
        solver is never consulted."""
        g, p = build_graph(
            {
                "a": conflicting_write("/shared", "same"),
                "b": conflicting_write("/shared", "same"),
            }
        )
        result = check_determinism(g, p)
        assert result.deterministic
        assert result.stats.distinct_finals == 1
        assert result.stats.sat_queries == 0

    def test_deterministic_variant_converges_to_one_final(self):
        """The paper's hard Fig. 13 variant (a final writer ordered
        after all n): previously a full UNSAT proof over n! finals,
        now every interleaving funnels into the final writer's state
        and dedup leaves a single final."""
        g, p = synthetic_conflict_graph(3)
        p = dict(p)
        p["final"] = conflicting_write("/shared", "x")
        g.add_node("final")
        for i in range(3):
            g.add_edge(f"w{i}", "final")
        result = check_determinism(
            g, p, DeterminismOptions(max_branches=500_000)
        )
        assert result.deterministic
        assert result.stats.distinct_finals == 1
        assert result.stats.sat_queries == 0
        assert result.stats.memo_hits > 0

    def test_ntp_nondet_dedup_keeps_the_bug_visible(self):
        """The §6 seeded bug: every pair of ntp-nondet interleavings
        diverges on /etc/ntp.conf — the divergence *is* the bug — so
        the state DAG never converges (zero memo hits is correct
        here, not a regression) and both distinct finals reach the
        solver."""
        tool = Rehearsal()
        graph, programs = tool.compile(load_source("ntp-nondet"))
        result = check_determinism(graph, programs)
        assert not result.deterministic
        assert result.stats.distinct_finals == 2
        assert result.stats.memo_hits == 0
        assert result.race is not None
        assert_witness_diverges(result, programs)

    def test_budget_exception_carries_memo_stats(self):
        g, p = synthetic_conflict_graph(6)
        options = DeterminismOptions(
            max_branches=100,
            use_pruning=False,
            use_elimination=False,
        )
        with pytest.raises(AnalysisBudgetExceeded) as info:
            check_determinism(g, p, options)
        exc = info.value
        assert exc.branches > 100
        assert exc.memo_hits >= 0
        assert exc.states_merged >= 0
        assert "memo hits" in str(exc)

    def test_naive_mode_explores_the_order_tree(self):
        """use_memoization=False restores the order-tree walk: one
        final per linearization, no merges."""
        g, p = synthetic_conflict_graph(4)
        result = check_determinism(g, p, NAIVE)
        stats = result.stats
        assert not result.deterministic
        # sum_k 4!/(4-k)! = 4 + 12 + 24 + 24
        assert stats.branches_explored == 64
        assert stats.memo_hits == 0
        assert stats.distinct_finals == 24


def random_manifest(rng):
    """A random small manifest mixing the three regimes: commuting
    resources (guarded mkdirs, private-path writes), conflicting
    resources (overwrite-style writers to shared paths), and
    DAG-ordered subsets (random edges)."""
    shared = ["/shared", "/etc"]
    private = ["/a", "/b", "/c"]
    n = rng.randint(2, 4)
    programs = {}
    for i in range(n):
        kind = rng.randrange(5)
        if kind == 0:
            programs[f"r{i}"] = conflicting_write(
                rng.choice(shared), rng.choice("xyz")
            )
        elif kind == 1:
            target = Path.of(rng.choice(shared))
            programs[f"r{i}"] = ite(
                file_(target), ID, mkdir(str(target))
            )
        elif kind == 2:
            programs[f"r{i}"] = creat(
                rng.choice(private), rng.choice("xy")
            )
        elif kind == 3:
            target = Path.of(rng.choice(shared + private))
            programs[f"r{i}"] = ite(file_(target), rm(str(target)), ID)
        else:
            programs[f"r{i}"] = ID
    names = list(programs)
    edges = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if rng.random() < 0.25:
                edges.append((names[i], names[j]))
    return build_graph(programs, edges)


class TestOracleAgreement:
    """The memoized DAG exploration and the naive order-enumerating
    oracle must agree on the verdict, and both must exhibit concretely
    diverging witnesses for non-deterministic manifests."""

    @given(st.integers(min_value=0, max_value=20_000))
    @settings(max_examples=40, deadline=None)
    def test_memoized_agrees_with_naive_oracle(self, seed):
        rng = random.Random(seed)
        g, p = random_manifest(rng)
        memoized = check_determinism(g, p)
        naive = check_determinism(g, p, NAIVE)
        assert memoized.deterministic == naive.deterministic, (
            f"memoized={memoized.deterministic} "
            f"naive={naive.deterministic} for {p}"
        )
        # The memoized walk can only ever be smaller.
        assert (
            memoized.stats.branches_explored
            <= naive.stats.branches_explored
        )
        if not memoized.deterministic:
            assert_witness_diverges(memoized, p)
            assert_witness_diverges(naive, p)

    @given(st.integers(min_value=0, max_value=20_000))
    @settings(max_examples=15, deadline=None)
    def test_memoization_toggle_alone_preserves_verdict(self, seed):
        """Isolate the memo: identical options except
        use_memoization, so any disagreement is the memo's fault
        rather than a reduction's."""
        rng = random.Random(seed)
        g, p = random_manifest(rng)
        on = check_determinism(g, p, DeterminismOptions())
        off = check_determinism(
            g, p, DeterminismOptions(use_memoization=False)
        )
        assert on.deterministic == off.deterministic


class TestConflictCounters:
    def test_incremental_conflicts_mirror_solver_lifetime(self):
        """The accumulators mirror the shared solver's lifetime
        totals and each QueryResult reports its own per-call delta —
        summing lifetime snapshots would double-count (a second
        identical check reuses learned clauses and must report ~zero
        new conflicts, not the running total)."""
        from repro.smt.query import IncrementalQuery

        bank = TermBank()
        # Pigeonhole 3-into-2: small but needs genuine search.
        holes = [[bank.var(f"p{i}h{j}") for j in range(2)] for i in range(3)]
        query = IncrementalQuery(bank)
        for row in holes:
            query.assert_term(bank.or_(*row))
        for j in range(2):
            for i in range(3):
                for k in range(i + 1, 3):
                    query.assert_term(
                        bank.not_(bank.and_(holes[i][j], holes[k][j]))
                    )
        first = query.check()
        second = query.check()
        assert not first.sat and not second.sat
        assert query.conflicts == query._solver.conflicts
        assert first.conflicts + second.conflicts == query.conflicts
        assert second.conflicts <= first.conflicts


class TestProfileFlag:
    def test_verify_profile_prints_phase_split(self, tmp_path, capsys):
        from repro.core.cli import main

        manifest = tmp_path / "m.pp"
        manifest.write_text(
            "file { '/etc/motd': content => 'hi' }", encoding="utf8"
        )
        code = main(["verify", str(manifest), "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "determinacy phase split" in out
        assert "explore" in out and "solve" in out
        assert "cumulative" in out  # the cProfile table

    def test_verify_without_profile_is_quiet(self, tmp_path, capsys):
        from repro.core.cli import main

        manifest = tmp_path / "m.pp"
        manifest.write_text(
            "file { '/etc/motd': content => 'hi' }", encoding="utf8"
        )
        main(["verify", str(manifest)])
        out = capsys.readouterr().out
        assert "determinacy phase split" not in out


class TestSchemaStats:
    SOURCE_NONDET = """
file { '/etc/app.conf': content => 'a' }
file { '/etc/app.conf2': content => 'b' }
"""

    def test_manifest_result_carries_exploration_stats(self):
        from repro.service.schema import ManifestResult

        tool = Rehearsal()
        report = tool.verify(load_source("ntp-nondet"), name="ntp")
        row = ManifestResult.from_report(report)
        stats = report.determinism.stats
        assert row.branches_explored == stats.branches_explored
        assert row.memo_hits == stats.memo_hits
        assert row.states_merged == stats.states_merged
        assert row.distinct_finals == stats.distinct_finals
        assert row.distinct_finals > 0
        restored = ManifestResult.from_dict(row.to_dict())
        assert restored == row

    def test_schema_version_bumped_for_exploration_fields(self):
        # v2 added the exploration stats; v3 added the lint block;
        # v4 added the solver_backend label; v5 added the
        # incremental-reuse counters.
        from repro.service.schema import SCHEMA_VERSION

        assert SCHEMA_VERSION == 5

    def test_cache_key_rotates_with_schema_version(self, monkeypatch):
        import repro.service.cache as cache_mod

        before = cache_mod.cache_key("file { '/f': }")
        monkeypatch.setattr(
            cache_mod, "SCHEMA_VERSION", cache_mod.SCHEMA_VERSION + 1
        )
        after = cache_mod.cache_key("file { '/f': }")
        assert before != after

    def test_cache_key_rotates_with_memoization_toggle(self):
        from repro.service.cache import cache_key

        src = "file { '/f': }"
        assert cache_key(src, DeterminismOptions()) != cache_key(
            src, DeterminismOptions(use_memoization=False)
        )
