"""Decoding SAT models back to concrete filesystems.

A model of a determinacy (or equivalence) query assigns the initial
path-state indicator variables; :func:`decode_filesystem` rebuilds the
witness initial filesystem, substituting printable placeholder text
for the generic contents ω₁/ω₂.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.fs.filesystem import DIR, FileContent, FileSystem
from repro.fs.paths import Path
from repro.smt.values import (
    OMEGA_1,
    OMEGA_2,
    PathDomains,
    V_DIR,
    V_DNE,
    VFile,
    initial_var_name,
)

GENERIC_PLACEHOLDERS = {
    OMEGA_1: "<arbitrary-content-1>",
    OMEGA_2: "<arbitrary-content-2>",
}


def decode_filesystem(
    domains: PathDomains, named_model: Dict[str, bool]
) -> FileSystem:
    """Rebuild the initial filesystem from named variable values.

    ``named_model`` maps variable names (as produced by
    :func:`~repro.smt.values.initial_var_name`) to booleans; variables
    missing from the model default to False, matching the solver's
    don't-care convention.
    """
    entries: Dict[Path, object] = {}
    for path in domains.paths:
        chosen = None
        for value in domains.values(path):
            if named_model.get(initial_var_name(path, value), False):
                chosen = value
                break
        if chosen is None or chosen == V_DNE:
            continue
        if chosen == V_DIR:
            entries[path] = DIR
        else:
            assert isinstance(chosen, VFile)
            text = GENERIC_PLACEHOLDERS.get(chosen.content, chosen.content)
            entries[path] = FileContent(text)
    return FileSystem(entries)  # type: ignore[arg-type]


def describe_filesystem(fs: FileSystem, limit: Optional[int] = 20) -> str:
    """Short human-readable rendering for diagnostics."""
    lines = fs.pretty().splitlines()
    if limit is not None and len(lines) > limit:
        shown = lines[:limit]
        shown.append(f"... and {len(lines) - limit} more entries")
        return "\n".join(shown)
    return "\n".join(lines)
