#!/usr/bin/env python3
"""Docs link checker: every relative link in the repo's markdown must
resolve to a real file or directory.

Scans README.md, DESIGN.md, CHANGES.md, ROADMAP.md and everything
under docs/, extracts inline markdown links ``[text](target)``, and
verifies each relative target exists (external ``http(s)``/``mailto``
URLs and pure in-page ``#anchors`` are skipped; a ``#fragment`` suffix
on a file link is stripped before checking).  Exits non-zero listing
every broken link, so CI fails the moment documentation rots.

Run:  python tools/check_links.py [repo-root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

# Inline links only; reference-style ([text][ref]) is not used in this
# repo.  Deliberately does not match images' surrounding ``!`` — an
# image link is checked the same way.
_LINK_RE = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

DEFAULT_DOCUMENTS = ("README.md", "DESIGN.md", "CHANGES.md", "ROADMAP.md")


def iter_documents(root: Path) -> List[Path]:
    docs = [root / name for name in DEFAULT_DOCUMENTS if (root / name).is_file()]
    docs_dir = root / "docs"
    if docs_dir.is_dir():
        docs.extend(sorted(docs_dir.rglob("*.md")))
    return docs


def extract_links(text: str) -> List[str]:
    links = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        links.extend(_LINK_RE.findall(line))
    return links


def broken_links(document: Path, root: Path) -> List[Tuple[str, str]]:
    """(target, reason) for every unresolvable relative link."""
    problems = []
    for target in extract_links(document.read_text(encoding="utf8")):
        if target.startswith(_SKIP_PREFIXES):
            continue
        if target.startswith("#"):
            continue  # in-page anchor
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (document.parent / path_part).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            problems.append((target, "escapes the repository"))
            continue
        if not resolved.exists():
            problems.append((target, f"no such file: {resolved}"))
    return problems


def check_tree(root: Path) -> List[str]:
    """Human-readable problem lines for the whole documentation set."""
    problems = []
    documents = iter_documents(root)
    if not documents:
        problems.append(f"no markdown documents found under {root}")
    for document in documents:
        for target, reason in broken_links(document, root):
            problems.append(
                f"{document.relative_to(root)}: broken link ({target}): "
                f"{reason}"
            )
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    problems = check_tree(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        count = len(iter_documents(root))
        print(f"docs link check: {count} documents, all links resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
