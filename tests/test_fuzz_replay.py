"""Single-reproducer replay: the API and ``rehearsal fuzz --replay``."""

from pathlib import Path

import pytest

from repro.core.cli import main as cli_main
from repro.testing.replay import replay_file

REPO_ROOT = Path(__file__).resolve().parent.parent
CORPUS = REPO_ROOT / "tests" / "regressions"
REPRODUCER = CORPUS / "clean-seed42-case16.pp"


class TestReplayFile:
    def test_committed_reproducer_replays_clean(self):
        result = replay_file(REPRODUCER)
        assert result.ok, result.problems
        # The oracle seed defaults to the header's.
        assert result.oracle_seed == result.header.seed == 42
        assert result.outcome.agreed

    def test_oracle_seed_override_still_replays_clean(self):
        result = replay_file(REPRODUCER, oracle_seed=1234)
        assert result.ok, result.problems
        assert result.oracle_seed == 1234

    def test_missing_file_is_a_problem_not_a_crash(self, tmp_path):
        result = replay_file(tmp_path / "gone.pp")
        assert not result.ok
        assert "cannot read" in result.problems[0]

    def test_bad_header_is_a_problem_not_a_crash(self, tmp_path):
        path = tmp_path / "bad.pp"
        path.write_text('file {"/tmp/x": content => "1" }\n')
        result = replay_file(path)
        assert not result.ok
        assert "first line" in result.problems[0]

    def test_tampered_pinned_verdict_fails_the_replay(self, tmp_path):
        text = REPRODUCER.read_text(encoding="utf8")
        tampered = text.replace(
            "# expected-deterministic: false",
            "# expected-deterministic: true",
        )
        assert tampered != text
        path = tmp_path / REPRODUCER.name
        path.write_text(tampered, encoding="utf8")
        result = replay_file(path)
        assert not result.ok
        assert any(
            "determinism verdict" in problem
            for problem in result.problems
        )

    def test_to_dict_is_json_shaped(self):
        payload = replay_file(REPRODUCER).to_dict()
        assert payload["ok"] is True
        assert payload["outcome"]["disagreements"] == []


class TestCli:
    def test_replay_exits_zero_on_clean_replay(self, capsys):
        code = cli_main(["fuzz", "--replay", str(REPRODUCER)])
        assert code == 0
        out = capsys.readouterr().out
        assert "still fixed" in out

    def test_replay_with_oracle_seed(self, capsys):
        code = cli_main(
            [
                "fuzz",
                "--replay",
                str(REPRODUCER),
                "--oracle-seed",
                "7",
            ]
        )
        assert code == 0
        assert "oracle seed 7" in capsys.readouterr().out

    def test_replay_missing_file_is_a_usage_error(self, tmp_path):
        code = cli_main(
            ["fuzz", "--replay", str(tmp_path / "gone.pp")]
        )
        assert code == 2

    def test_oracle_seed_without_replay_is_a_usage_error(self, capsys):
        code = cli_main(["fuzz", "--oracle-seed", "7", "--cases", "1"])
        assert code == 2
        assert "--replay" in capsys.readouterr().err

    def test_failed_replay_exits_one(self, tmp_path, capsys):
        text = REPRODUCER.read_text(encoding="utf8").replace(
            "# expected-deterministic: false",
            "# expected-deterministic: true",
        )
        path = tmp_path / "tampered.pp"
        path.write_text(text, encoding="utf8")
        code = cli_main(["fuzz", "--replay", str(path)])
        assert code == 1
        assert "REPLAY FAILED" in capsys.readouterr().err
