"""SAT query plumbing: term → CNF → CDCL solver → named model.

A :class:`Query` bundles the term bank, formula assembly, solving, and
statistics that the analyses report (variable/clause counts feed the
Fig. 11 instrumentation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.logic.cnf import tseitin
from repro.logic.terms import Term, TermBank
from repro.sat.solver import Solver


@dataclass
class QueryResult:
    sat: bool
    named_model: Dict[str, bool] = field(default_factory=dict)
    num_vars: int = 0
    num_clauses: int = 0
    solve_seconds: float = 0.0
    conflicts: int = 0
    decisions: int = 0


class Query:
    """A single satisfiability question over a term bank."""

    def __init__(self, bank: TermBank):
        self.bank = bank
        self._assertions: list[Term] = []

    def assert_term(self, term: Term) -> None:
        self._assertions.append(term)

    def check(self, max_conflicts: Optional[int] = None) -> QueryResult:
        formula = self.bank.and_(*self._assertions)
        if formula is self.bank.TRUE:
            return QueryResult(sat=True)
        if formula is self.bank.FALSE:
            return QueryResult(sat=False)
        cnf, root_lit = tseitin(formula, self.bank)
        cnf.add([root_lit])
        solver = Solver(cnf.num_vars)
        for clause in cnf.clauses:
            solver.add_clause(clause)
        start = time.perf_counter()
        result = solver.solve(max_conflicts=max_conflicts)
        elapsed = time.perf_counter() - start
        named = cnf.decode(result.assignment) if result.sat else {}
        return QueryResult(
            sat=result.sat,
            named_model=named,
            num_vars=cnf.num_vars,
            num_clauses=len(cnf.clauses),
            solve_seconds=elapsed,
            conflicts=result.conflicts,
            decisions=result.decisions,
        )


def check_sat(
    bank: TermBank, term: Term, max_conflicts: Optional[int] = None
) -> QueryResult:
    """One-shot satisfiability check of a single term."""
    query = Query(bank)
    query.assert_term(term)
    return query.check(max_conflicts=max_conflicts)
