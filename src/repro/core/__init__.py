"""The end-to-end Rehearsal tool."""

from repro.core.pipeline import Rehearsal, VerificationReport
from repro.core.report import (
    render_determinism,
    render_idempotence,
    render_report,
)

__all__ = [
    "Rehearsal",
    "VerificationReport",
    "render_determinism",
    "render_idempotence",
    "render_report",
]
