"""Tests for CNF preprocessing (repro.sat.preprocess).

The key properties, checked against the brute-force oracle on random
small instances (Hypothesis):

* preprocessed-then-solved and raw-solved agree on satisfiability;
* a model of the simplified instance, run through
  ``Preprocessed.reconstruct``, satisfies the *original* clauses;
* clauses added after preprocessing (via ``simplify_clause`` +
  ``restore``) preserve both properties.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.brute import brute_force_solve, check_assignment
from repro.sat.preprocess import preprocess
from repro.sat.solver import Solver, solve_cnf

NUM_VARS = 8

literals = st.integers(min_value=1, max_value=NUM_VARS).flatmap(
    lambda v: st.sampled_from([v, -v])
)
clauses_strategy = st.lists(
    st.lists(literals, min_size=1, max_size=3), min_size=1, max_size=24
)
frozen_strategy = st.sets(
    st.integers(min_value=1, max_value=NUM_VARS), max_size=4
)


def solve_with_preprocessing(clauses, frozen=()):
    pre = preprocess(clauses, NUM_VARS, frozen=frozen)
    if pre.unsat:
        return None, pre
    result = solve_cnf(pre.clauses, pre.num_vars)
    if not result.sat:
        return None, pre
    return pre.reconstruct(result.assignment), pre


class TestAgainstBruteForce:
    @settings(max_examples=300, deadline=None)
    @given(clauses=clauses_strategy, frozen=frozen_strategy)
    def test_preprocessed_verdict_matches_raw_and_oracle(
        self, clauses, frozen
    ):
        oracle = brute_force_solve(clauses, NUM_VARS)
        raw = solve_cnf(clauses, NUM_VARS)
        model, _ = solve_with_preprocessing(clauses, frozen)
        assert raw.sat == (oracle is not None)
        assert (model is not None) == (oracle is not None)

    @settings(max_examples=300, deadline=None)
    @given(clauses=clauses_strategy, frozen=frozen_strategy)
    def test_reconstructed_model_satisfies_original_clauses(
        self, clauses, frozen
    ):
        model, _ = solve_with_preprocessing(clauses, frozen)
        if model is None:
            return
        full = {v: model.get(v, False) for v in range(1, NUM_VARS + 1)}
        assert check_assignment(clauses, full)

    @settings(max_examples=200, deadline=None)
    @given(
        clauses=clauses_strategy,
        extra=st.lists(
            st.lists(literals, min_size=1, max_size=3), max_size=4
        ),
    )
    def test_late_clauses_via_restore_are_sound(self, clauses, extra):
        """Adding clauses after preprocessing must agree with solving
        everything from scratch, provided eliminated variables are
        restored and the new clauses simplified."""
        pre = preprocess(clauses, NUM_VARS)
        oracle = brute_force_solve(clauses + extra, NUM_VARS)
        if pre.unsat:
            assert brute_force_solve(clauses, NUM_VARS) is None
            assert oracle is None
            return
        solver = Solver()
        for clause in pre.clauses:
            solver.add_clause(clause)
        for clause in extra:
            for lit in clause:
                for restored in pre.restore(abs(lit)):
                    solver.add_clause(restored)
            simplified = pre.simplify_clause(clause)
            if simplified is not None:
                solver.add_clause(simplified)
        result = solver.solve()
        assert result.sat == (oracle is not None)
        if result.sat:
            model = pre.reconstruct(result.assignment)
            full = {
                v: model.get(v, False) for v in range(1, NUM_VARS + 1)
            }
            assert check_assignment(clauses + extra, full)


class TestPasses:
    def test_unit_propagation_to_fixpoint(self):
        pre = preprocess([[1], [-1, 2], [-2, 3], [-3, 4]], 4)
        assert not pre.unsat
        assert pre.clauses == []
        assert pre.assigned == {1: True, 2: True, 3: True, 4: True}

    def test_unit_conflict_is_unsat(self):
        pre = preprocess([[1], [-1, 2], [-2]], 2)
        assert pre.unsat

    def test_pure_literal_elimination(self):
        pre = preprocess([[1, 2], [1, 3], [-2, 3]], 3)
        # 1 and 3 are pure; everything dissolves.
        assert pre.clauses == []
        model = pre.reconstruct({})
        assert check_assignment([[1, 2], [1, 3], [-2, 3]], {
            v: model.get(v, False) for v in range(1, 4)
        })

    def test_frozen_variables_keep_their_clauses(self):
        clauses = [[1, 2], [1, 3]]
        pre = preprocess(clauses, 3, frozen={1, 2, 3})
        # 1 is pure but frozen: no elimination may remove it.
        assert pre.eliminated == set()
        assert sorted(map(sorted, pre.clauses)) == sorted(
            map(sorted, clauses)
        )

    def test_subsumption_drops_supersets(self):
        pre = preprocess([[1, 2], [1, 2, 3], [1, 2, 4]], 4, frozen={1, 2, 3, 4})
        assert pre.stats.subsumed == 2
        assert sorted(map(sorted, pre.clauses)) == [[1, 2]]

    def test_self_subsuming_resolution_strengthens(self):
        # (1 ∨ 2) with (¬1 ∨ 2 ∨ 3) strengthens the latter to (2 ∨ 3).
        pre = preprocess(
            [[1, 2], [-1, 2, 3], [3, 4], [-3, -4]], 4, frozen={1, 2, 3, 4}
        )
        assert pre.stats.strengthened >= 1
        assert [2, 3] in [sorted(c) for c in pre.clauses]

    def test_variable_elimination_resolves(self):
        # Resolving on 1: (2 ∨ 3) is the single resolvent.
        pre = preprocess([[1, 2], [-1, 3]], 3)
        assert 1 in pre.eliminated or pre.clauses == []
        model = pre.reconstruct(
            {2: True, 3: False}
            if any(2 in map(abs, c) for c in pre.clauses)
            else {}
        )
        full = {v: model.get(v, False) for v in range(1, 4)}
        assert check_assignment([[1, 2], [-1, 3]], full)

    def test_tautologies_dropped(self):
        pre = preprocess([[1, -1], [2, 3]], 3)
        assert not pre.unsat

    def test_empty_clause_is_unsat(self):
        pre = preprocess([[1], []], 1)
        assert pre.unsat

    def test_stats_populated(self):
        pre = preprocess([[1], [-1, 2], [2, 3, 4], [2, 3]], 4)
        stats = pre.stats
        assert stats.clauses_before == 4
        assert stats.units_fixed >= 2
        assert stats.rounds >= 1


class TestReconstructionEdgeCases:
    def test_reconstruct_empty_model(self):
        pre = preprocess([[1, 2]], 2)
        model = pre.reconstruct({})
        full = {v: model.get(v, False) for v in (1, 2)}
        assert check_assignment([[1, 2]], full)

    def test_restore_unknown_variable_is_noop(self):
        pre = preprocess([[1, 2]], 2)
        assert pre.restore(99) == []

    def test_restore_cascades_through_later_eliminations(self):
        # Eliminating 7 produces the resolvent (¬3 ∨ 1), whose later
        # elimination on 1 must be unwound together with 7's.
        clauses = [[-3, 7], [8, 6], [3, 5, -1], [-7, 1]]
        pre = preprocess(clauses, 8)
        solver = Solver()
        for clause in pre.clauses:
            solver.add_clause(clause)
        extra = [[-2], [6], [7], [7, -2]]
        for clause in extra:
            for lit in clause:
                for restored in pre.restore(abs(lit)):
                    solver.add_clause(restored)
            simplified = pre.simplify_clause(clause)
            if simplified is not None:
                solver.add_clause(simplified)
        result = solver.solve()
        assert result.sat
        model = pre.reconstruct(result.assignment)
        full = {v: model.get(v, False) for v in range(1, 9)}
        assert check_assignment(clauses + extra, full)
